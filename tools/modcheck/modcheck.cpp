#include "modcheck.hpp"

#include <algorithm>
#include <fstream>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "lexer.hpp"
#include "suppress.hpp"

namespace modcheck {
namespace fs = std::filesystem;

using analyzer::member_access;
using analyzer::skip_template_args;
using analyzer::split_lines;
using analyzer::split_ws;
using analyzer::std_qualified;
using analyzer::strip_comments;
using analyzer::Suppression;
using analyzer::Token;
using analyzer::tok_is;
using analyzer::tokenize;
using analyzer::trim;

namespace {

const std::set<std::string> kKnownRules = {
    "layer.forbidden",     "layer.private-header", "layer.unmapped",
    "det.rand",            "det.random-device",    "det.wall-clock",
    "det.unordered-iter",  "det.pointer-order",    "det.thread",
    "meta.bad-suppression", "meta.unused-suppression",
};

}  // namespace

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

const Layer* Manifest::find(const std::string& name) const {
  for (const Layer& l : layers)
    if (l.name == name) return &l;
  return nullptr;
}

bool Manifest::deterministic(const std::string& layer_name) const {
  return std::find(determinism_layers.begin(), determinism_layers.end(),
                   layer_name) != determinism_layers.end();
}

Manifest parse_manifest(std::istream& in) {
  Manifest m;
  Layer* current = nullptr;
  bool in_determinism = false;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = trim(line);
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line.back() != ']')
        throw std::runtime_error(std::to_string(lineno) +
                                 ": unterminated section header");
      std::string section = trim(line.substr(1, line.size() - 2));
      if (section == "determinism") {
        in_determinism = true;
        current = nullptr;
      } else if (section.rfind("layer ", 0) == 0) {
        in_determinism = false;
        Layer l;
        l.name = trim(section.substr(6));
        if (l.name.empty())
          throw std::runtime_error(std::to_string(lineno) +
                                   ": [layer] needs a name");
        if (m.find(l.name))
          throw std::runtime_error(std::to_string(lineno) +
                                   ": duplicate layer " + l.name);
        m.layers.push_back(l);
        current = &m.layers.back();
      } else {
        throw std::runtime_error(std::to_string(lineno) +
                                 ": unknown section [" + section + "]");
      }
      continue;
    }
    std::size_t eq = line.find('=');
    if (eq == std::string::npos)
      throw std::runtime_error(std::to_string(lineno) +
                               ": expected key = value");
    std::string key = trim(line.substr(0, eq));
    std::string value = trim(line.substr(eq + 1));
    if (in_determinism) {
      if (key != "layers")
        throw std::runtime_error(std::to_string(lineno) +
                                 ": unknown determinism key " + key);
      m.determinism_layers = split_ws(value);
    } else if (current) {
      if (key == "path") {
        current->path = value;
      } else if (key == "deps") {
        current->deps = split_ws(value);
      } else if (key == "public") {
        current->public_headers = split_ws(value);
      } else {
        throw std::runtime_error(std::to_string(lineno) + ": unknown key " +
                                 key + " in [layer " + current->name + "]");
      }
    } else {
      throw std::runtime_error(std::to_string(lineno) +
                               ": key outside any section");
    }
  }

  // Validate: paths present, dep names known, determinism names known.
  for (const Layer& l : m.layers) {
    if (l.path.empty())
      throw std::runtime_error("layer " + l.name + " has no path");
    for (const std::string& d : l.deps)
      if (!m.find(d))
        throw std::runtime_error("layer " + l.name +
                                 " depends on unknown layer " + d);
  }
  for (const std::string& d : m.determinism_layers)
    if (!m.find(d))
      throw std::runtime_error("determinism scope names unknown layer " + d);

  // Validate: the declared edges form a DAG (depth-first cycle check).
  std::map<std::string, int> state;  // 0 unseen, 1 on stack, 2 done
  std::function<void(const Layer&)> visit = [&](const Layer& l) {
    state[l.name] = 1;
    for (const std::string& d : l.deps) {
      const Layer* dep = m.find(d);
      if (state[dep->name] == 1)
        throw std::runtime_error("layer cycle through " + l.name + " -> " +
                                 dep->name);
      if (state[dep->name] == 0) visit(*dep);
    }
    state[l.name] = 2;
  };
  for (const Layer& l : m.layers)
    if (state[l.name] == 0) visit(l);
  return m;
}

Manifest load_manifest(const fs::path& file) {
  std::ifstream in(file);
  if (!in) throw std::runtime_error("cannot open manifest " + file.string());
  try {
    return parse_manifest(in);
  } catch (const std::exception& e) {
    throw std::runtime_error(file.string() + ":" + e.what());
  }
}

// ---------------------------------------------------------------------------
// Per-file analysis
// ---------------------------------------------------------------------------

namespace {

struct FileContext {
  std::string file;  ///< relative path used in diagnostics
  const Manifest* manifest;
  const Layer* layer;            ///< owning layer (may be null)
  bool det;                      ///< determinism rules apply
  std::vector<Suppression> sups;
  std::vector<Diagnostic> pending;

  void flag(int line, const std::string& rule, const std::string& message) {
    pending.push_back({file, line, rule, message, false, ""});
  }
};

/// Resolves the layer owning `path` (relative to root) by longest prefix.
const Layer* layer_of(const Manifest& m, const std::string& path) {
  const Layer* best = nullptr;
  std::size_t best_len = 0;
  for (const Layer& l : m.layers) {
    const std::string prefix = l.path + "/";
    if (path.size() > prefix.size() && path.compare(0, prefix.size(), prefix) == 0 &&
        prefix.size() > best_len) {
      best = &l;
      best_len = prefix.size();
    }
  }
  return best;
}

/// Include scanning reads the RAW lines (the include path is a string
/// literal, which the code view blanks out); the code view only gates out
/// includes sitting inside comments.
void check_includes(FileContext& ctx, const std::vector<std::string>& raw,
                    const std::vector<std::string>& code,
                    const fs::path& root) {
  const Manifest& m = *ctx.manifest;
  for (std::size_t li = 0; li < raw.size(); ++li) {
    const std::string& line = raw[li];
    int lineno = static_cast<int>(li) + 1;
    std::string gate = trim(code[li]);
    if (gate.empty() || gate[0] != '#') continue;
    std::string t = trim(line);
    if (t.empty() || t[0] != '#') continue;
    std::string directive = trim(t.substr(1));
    if (directive.rfind("include", 0) != 0) continue;
    std::string rest = trim(directive.substr(7));
    if (rest.empty()) continue;
    if (rest[0] == '<') {
      if (!ctx.det) continue;
      std::size_t close = rest.find('>');
      if (close == std::string::npos) continue;
      std::string header = rest.substr(1, close - 1);
      if (header == "thread") {
        ctx.flag(lineno, "det.thread",
                 "<thread> in determinism scope — threads only in the sweep "
                 "runner");
      } else if (header == "random") {
        ctx.flag(lineno, "det.rand",
                 "<random> in determinism scope — use util/rng.hpp streams");
      } else if (header == "ctime" || header == "time.h" ||
                 header == "sys/time.h") {
        ctx.flag(lineno, "det.wall-clock",
                 "<" + header + "> in determinism scope — use virtual time");
      }
      continue;
    }
    if (rest[0] != '"') continue;
    std::size_t close = rest.find('"', 1);
    if (close == std::string::npos) continue;
    std::string inc = rest.substr(1, close - 1);
    // Resolve: project includes are root-relative ("util/bytes.hpp"); a
    // bare name ("foo.hpp") refers to the including file's own directory.
    std::string resolved = inc;
    if (!fs::exists(root / resolved)) {
      fs::path sibling = fs::path(ctx.file).parent_path() / inc;
      if (fs::exists(root / sibling)) resolved = sibling.generic_string();
    }
    const Layer* target = layer_of(m, resolved);
    if (!target || !ctx.layer) continue;  // unmapped handled elsewhere
    if (target == ctx.layer) continue;
    bool allowed =
        std::find(ctx.layer->deps.begin(), ctx.layer->deps.end(),
                  target->name) != ctx.layer->deps.end();
    if (!allowed) {
      ctx.flag(lineno, "layer.forbidden",
               "layer '" + ctx.layer->name + "' must not include '" +
                   resolved + "' (layer '" + target->name +
                   "' is not a declared dependency)");
      continue;
    }
    if (!target->public_headers.empty()) {
      std::string within = resolved.substr(target->path.size() + 1);
      bool is_public =
          std::find(target->public_headers.begin(),
                    target->public_headers.end(),
                    within) != target->public_headers.end();
      if (!is_public)
        ctx.flag(lineno, "layer.private-header",
                 "'" + resolved + "' is internal to layer '" + target->name +
                     "' (public: its declared interface headers only)");
    }
  }
}

void check_determinism(FileContext& ctx, const std::vector<Token>& toks) {
  static const std::set<std::string> kUnorderedTypes = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  static const std::set<std::string> kOrderedTypes = {
      "map", "set", "multimap", "multiset", "less", "greater"};
  static const std::set<std::string> kWallClock = {
      "system_clock", "steady_clock", "high_resolution_clock", "gettimeofday",
      "clock_gettime", "localtime", "gmtime"};
  static const std::set<std::string> kRand = {"rand", "srand", "rand_r",
                                             "drand48", "mrand48", "lrand48"};

  // Pass 1: names declared as unordered containers in this file.
  std::set<std::string> unordered_names;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!toks[i].ident || !kUnorderedTypes.count(toks[i].text)) continue;
    std::size_t j = skip_template_args(toks, i + 1);
    if (j > i + 1 && j < toks.size() && toks[j].ident)
      unordered_names.insert(toks[j].text);
  }

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& tk = toks[i];
    if (!tk.ident) continue;
    const std::string& s = tk.text;

    if (kRand.count(s) && tok_is(toks, i + 1, "(") && !member_access(toks, i)) {
      ctx.flag(tk.line, "det.rand",
               s + "() draws from ambient process state — use the seeded "
                   "util::Rng streams");
    }
    if (s == "random_device") {
      ctx.flag(tk.line, "det.random-device",
               "std::random_device is nondeterministic — derive seeds from "
               "the world seed");
    }
    if (kWallClock.count(s)) {
      ctx.flag(tk.line, "det.wall-clock",
               s + " reads the host clock — result-affecting code must use "
                   "virtual time (util::TimePoint)");
    }
    if ((s == "time" || s == "clock") && tok_is(toks, i + 1, "(") &&
        !member_access(toks, i)) {
      // Allow `obj.time()` accessors and non-std qualified names; flag bare
      // and std:: calls of the C library functions.
      bool qualified = i >= 2 && toks[i - 1].text == ":" &&
                       toks[i - 2].text == ":";
      if (!qualified || std_qualified(toks, i))
        ctx.flag(tk.line, "det.wall-clock",
                 s + "() reads the host clock — use virtual time");
    }
    if ((s == "thread" || s == "jthread") && std_qualified(toks, i)) {
      ctx.flag(tk.line, "det.thread",
               "std::" + s + " in determinism scope — threads only in the "
                             "sweep runner");
    }
    if (s == "async" && std_qualified(toks, i)) {
      ctx.flag(tk.line, "det.thread",
               "std::async in determinism scope — threads only in the sweep "
               "runner");
    }
    if (s == "hardware_concurrency") {
      ctx.flag(tk.line, "det.thread",
               "hardware_concurrency() makes behaviour depend on the host — "
               "take explicit job counts");
    }
    if (kOrderedTypes.count(s) && std_qualified(toks, i) &&
        tok_is(toks, i + 1, "<")) {
      // Inspect the first template argument; a trailing '*' means the
      // container is keyed (or the comparator ordered) by pointer value.
      int depth = 0;
      std::string last;
      for (std::size_t j = i + 1; j < toks.size(); ++j) {
        const std::string& u = toks[j].text;
        if (u == "<") {
          ++depth;
          continue;
        }
        if (u == ">" && --depth == 0) break;
        if (u == "," && depth == 1) break;
        last = u;
      }
      if (last == "*")
        ctx.flag(tk.line, "det.pointer-order",
                 "std::" + s + " keyed by pointer — iteration order depends "
                               "on allocation addresses");
    }
    if (s == "for" && tok_is(toks, i + 1, "(")) {
      // Range-for over an unordered container: for (decl : expr).
      int depth = 0;
      std::size_t colon = 0, end = 0;
      for (std::size_t j = i + 1; j < toks.size(); ++j) {
        const std::string& u = toks[j].text;
        if (u == "(") ++depth;
        if (u == ")" && --depth == 0) {
          end = j;
          break;
        }
        if (u == ":" && depth == 1 && !tok_is(toks, j + 1, ":") &&
            !(j > 0 && toks[j - 1].text == ":"))
          if (!colon) colon = j;
      }
      if (colon && end) {
        for (std::size_t j = colon + 1; j < end; ++j)
          if (toks[j].ident && unordered_names.count(toks[j].text)) {
            ctx.flag(toks[j].line, "det.unordered-iter",
                     "range-for over unordered container '" + toks[j].text +
                         "' — iteration order is unspecified");
            break;
          }
      }
    }
    if ((s == "begin" || s == "end" || s == "cbegin" || s == "cend") &&
        member_access(toks, i) && i >= 2 && toks[i - 2].ident &&
        unordered_names.count(toks[i - 2].text)) {
      ctx.flag(tk.line, "det.unordered-iter",
               "iterating unordered container '" + toks[i - 2].text +
                   "' — iteration order is unspecified");
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

void analyze_source(const analyzer::SourceFile& src, const Manifest& manifest,
                    const fs::path& root, std::vector<Diagnostic>& out) {
  FileContext ctx;
  ctx.file = src.rel;
  ctx.manifest = &manifest;
  ctx.layer = layer_of(manifest, src.rel);
  ctx.det = ctx.layer && manifest.deterministic(ctx.layer->name);
  ctx.sups = analyzer::collect_suppressions("modcheck", kKnownRules, src.rel,
                                            src.lines, out);

  if (!ctx.layer) {
    ctx.flag(1, "layer.unmapped",
             "file is under no declared layer — add it to the manifest");
  }

  check_includes(ctx, src.lines, src.code, root);
  if (ctx.det) check_determinism(ctx, src.tokens);

  analyzer::dedupe_by_line_rule(ctx.pending);
  analyzer::apply_suppressions("modcheck", src.rel, ctx.sups, ctx.pending,
                               out);
}

void analyze_file(const std::string& relative_path, const std::string& text,
                  const Manifest& manifest, const fs::path& root,
                  std::vector<Diagnostic>& out) {
  analyze_source(analyzer::make_source_file(relative_path, text), manifest,
                 root, out);
}

Report analyze(const fs::path& root, const Manifest& manifest,
               const analyzer::SourceTree* tree) {
  analyzer::SourceTree local;
  if (!tree) {
    local = analyzer::load_tree(root);
    tree = &local;
  }
  Report report;
  for (const analyzer::SourceFile& src : tree->files) {
    analyze_source(src, manifest, root, report.diagnostics);
    ++report.files_scanned;
  }
  report.sort_stable();
  return report;
}

std::string to_json(const Report& report, const std::string& root) {
  return analyzer::to_json(report, "modcheck", root);
}

}  // namespace modcheck
