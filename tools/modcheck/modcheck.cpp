#include "modcheck.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace modcheck {
namespace fs = std::filesystem;

namespace {

const std::set<std::string> kKnownRules = {
    "layer.forbidden",     "layer.private-header", "layer.unmapped",
    "det.rand",            "det.random-device",    "det.wall-clock",
    "det.unordered-iter",  "det.pointer-order",    "det.thread",
    "meta.bad-suppression", "meta.unused-suppression",
};

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

std::vector<std::string> split_ws(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream in(s);
  std::string w;
  while (in >> w) out.push_back(w);
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

const Layer* Manifest::find(const std::string& name) const {
  for (const Layer& l : layers)
    if (l.name == name) return &l;
  return nullptr;
}

bool Manifest::deterministic(const std::string& layer_name) const {
  return std::find(determinism_layers.begin(), determinism_layers.end(),
                   layer_name) != determinism_layers.end();
}

Manifest parse_manifest(std::istream& in) {
  Manifest m;
  Layer* current = nullptr;
  bool in_determinism = false;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = trim(line);
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line.back() != ']')
        throw std::runtime_error(std::to_string(lineno) +
                                 ": unterminated section header");
      std::string section = trim(line.substr(1, line.size() - 2));
      if (section == "determinism") {
        in_determinism = true;
        current = nullptr;
      } else if (section.rfind("layer ", 0) == 0) {
        in_determinism = false;
        Layer l;
        l.name = trim(section.substr(6));
        if (l.name.empty())
          throw std::runtime_error(std::to_string(lineno) +
                                   ": [layer] needs a name");
        if (m.find(l.name))
          throw std::runtime_error(std::to_string(lineno) +
                                   ": duplicate layer " + l.name);
        m.layers.push_back(l);
        current = &m.layers.back();
      } else {
        throw std::runtime_error(std::to_string(lineno) +
                                 ": unknown section [" + section + "]");
      }
      continue;
    }
    std::size_t eq = line.find('=');
    if (eq == std::string::npos)
      throw std::runtime_error(std::to_string(lineno) +
                               ": expected key = value");
    std::string key = trim(line.substr(0, eq));
    std::string value = trim(line.substr(eq + 1));
    if (in_determinism) {
      if (key != "layers")
        throw std::runtime_error(std::to_string(lineno) +
                                 ": unknown determinism key " + key);
      m.determinism_layers = split_ws(value);
    } else if (current) {
      if (key == "path") {
        current->path = value;
      } else if (key == "deps") {
        current->deps = split_ws(value);
      } else if (key == "public") {
        current->public_headers = split_ws(value);
      } else {
        throw std::runtime_error(std::to_string(lineno) + ": unknown key " +
                                 key + " in [layer " + current->name + "]");
      }
    } else {
      throw std::runtime_error(std::to_string(lineno) +
                               ": key outside any section");
    }
  }

  // Validate: paths present, dep names known, determinism names known.
  for (const Layer& l : m.layers) {
    if (l.path.empty())
      throw std::runtime_error("layer " + l.name + " has no path");
    for (const std::string& d : l.deps)
      if (!m.find(d))
        throw std::runtime_error("layer " + l.name +
                                 " depends on unknown layer " + d);
  }
  for (const std::string& d : m.determinism_layers)
    if (!m.find(d))
      throw std::runtime_error("determinism scope names unknown layer " + d);

  // Validate: the declared edges form a DAG (depth-first cycle check).
  std::map<std::string, int> state;  // 0 unseen, 1 on stack, 2 done
  std::vector<const Layer*> stack;
  std::function<void(const Layer&)> visit = [&](const Layer& l) {
    state[l.name] = 1;
    for (const std::string& d : l.deps) {
      const Layer* dep = m.find(d);
      if (state[dep->name] == 1)
        throw std::runtime_error("layer cycle through " + l.name + " -> " +
                                 dep->name);
      if (state[dep->name] == 0) visit(*dep);
    }
    state[l.name] = 2;
  };
  for (const Layer& l : m.layers)
    if (state[l.name] == 0) visit(l);
  return m;
}

Manifest load_manifest(const fs::path& file) {
  std::ifstream in(file);
  if (!in) throw std::runtime_error("cannot open manifest " + file.string());
  try {
    return parse_manifest(in);
  } catch (const std::exception& e) {
    throw std::runtime_error(file.string() + ":" + e.what());
  }
}

// ---------------------------------------------------------------------------
// Lexing: comment/string stripping and tokenization
// ---------------------------------------------------------------------------

namespace {

struct Token {
  std::string text;
  int line;
  bool ident;
};

/// Removes comments and the contents of string/char literals while keeping
/// line structure intact (so token line numbers match the source).
std::vector<std::string> strip_comments(const std::vector<std::string>& lines) {
  std::vector<std::string> out;
  out.reserve(lines.size());
  bool in_block = false;
  for (const std::string& line : lines) {
    std::string code;
    for (std::size_t i = 0; i < line.size();) {
      if (in_block) {
        if (line.compare(i, 2, "*/") == 0) {
          in_block = false;
          i += 2;
        } else {
          ++i;
        }
        continue;
      }
      if (line.compare(i, 2, "//") == 0) break;
      if (line.compare(i, 2, "/*") == 0) {
        in_block = true;
        i += 2;
        continue;
      }
      char c = line[i];
      if (c == '"' || c == '\'') {
        char quote = c;
        code += quote;
        ++i;
        while (i < line.size()) {
          if (line[i] == '\\') {
            i += 2;
            continue;
          }
          if (line[i] == quote) {
            ++i;
            break;
          }
          ++i;
        }
        code += quote;
        continue;
      }
      code += c;
      ++i;
    }
    out.push_back(code);
  }
  return out;
}

std::vector<Token> tokenize(const std::vector<std::string>& code_lines) {
  std::vector<Token> toks;
  for (std::size_t li = 0; li < code_lines.size(); ++li) {
    const std::string& line = code_lines[li];
    int lineno = static_cast<int>(li) + 1;
    for (std::size_t i = 0; i < line.size();) {
      char c = line[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::size_t j = i;
        while (j < line.size() &&
               (std::isalnum(static_cast<unsigned char>(line[j])) ||
                line[j] == '_'))
          ++j;
        toks.push_back({line.substr(i, j - i), lineno, true});
        i = j;
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        std::size_t j = i;
        while (j < line.size() &&
               (std::isalnum(static_cast<unsigned char>(line[j])) ||
                line[j] == '.' || line[j] == '\''))
          ++j;
        toks.push_back({line.substr(i, j - i), lineno, false});
        i = j;
      } else {
        toks.push_back({std::string(1, c), lineno, false});
        ++i;
      }
    }
  }
  return toks;
}

bool tok_is(const std::vector<Token>& t, std::size_t i, const char* s) {
  return i < t.size() && t[i].text == s;
}

/// True when tokens[i] is qualified as std:: (i.e. preceded by "std::").
bool std_qualified(const std::vector<Token>& t, std::size_t i) {
  return i >= 3 && t[i - 1].text == ":" && t[i - 2].text == ":" &&
         t[i - 3].text == "std";
}

/// True when tokens[i] is a member access (preceded by "." or "->").
bool member_access(const std::vector<Token>& t, std::size_t i) {
  if (i == 0) return false;
  if (t[i - 1].text == ".") return true;
  return i >= 2 && t[i - 1].text == ">" && t[i - 2].text == "-";
}

/// Skips a balanced <...> starting at the '<' at index i; returns the index
/// just past the matching '>'. Returns i when tokens[i] is not '<'.
std::size_t skip_template_args(const std::vector<Token>& t, std::size_t i) {
  if (!tok_is(t, i, "<")) return i;
  int depth = 0;
  for (; i < t.size(); ++i) {
    if (t[i].text == "<") ++depth;
    if (t[i].text == ">" && --depth == 0) return i + 1;
  }
  return i;
}

// --- Suppressions -----------------------------------------------------------

struct Suppression {
  int line;  ///< covers this line and the next
  std::string rule;
  std::string justification;
  bool used = false;
};

/// Extracts modcheck:allow(...) annotations from the raw source lines.
/// Malformed annotations become meta.bad-suppression diagnostics.
std::vector<Suppression> collect_suppressions(
    const std::string& file, const std::vector<std::string>& lines,
    std::vector<Diagnostic>& out) {
  std::vector<Suppression> sups;
  const std::string marker = "modcheck:allow(";
  for (std::size_t li = 0; li < lines.size(); ++li) {
    const std::string& line = lines[li];
    int lineno = static_cast<int>(li) + 1;
    std::size_t at = line.find(marker);
    if (at == std::string::npos) continue;
    std::size_t open = at + marker.size() - 1;
    std::size_t close = line.find(')', open);
    if (close == std::string::npos) {
      out.push_back({file, lineno, "meta.bad-suppression",
                     "unterminated modcheck:allow(...)", false, ""});
      continue;
    }
    std::string rule = trim(line.substr(open + 1, close - open - 1));
    if (!kKnownRules.count(rule)) {
      out.push_back({file, lineno, "meta.bad-suppression",
                     "modcheck:allow names unknown rule '" + rule + "'",
                     false, ""});
      continue;
    }
    std::string rest = trim(line.substr(close + 1));
    if (rest.empty() || rest[0] != ':' || trim(rest.substr(1)).empty()) {
      out.push_back({file, lineno, "meta.bad-suppression",
                     "modcheck:allow(" + rule +
                         ") needs a justification: \"// modcheck:allow(" +
                         rule + "): why this is safe\"",
                     false, ""});
      continue;
    }
    sups.push_back({lineno, rule, trim(rest.substr(1)), false});
  }
  return sups;
}

// --- Per-file analysis ------------------------------------------------------

struct FileContext {
  std::string file;  ///< relative path used in diagnostics
  const Manifest* manifest;
  const Layer* layer;            ///< owning layer (may be null)
  bool det;                      ///< determinism rules apply
  std::vector<Suppression> sups;
  std::vector<Diagnostic> pending;

  void flag(int line, const std::string& rule, const std::string& message) {
    pending.push_back({file, line, rule, message, false, ""});
  }
};

/// Resolves the layer owning `path` (relative to root) by longest prefix.
const Layer* layer_of(const Manifest& m, const std::string& path) {
  const Layer* best = nullptr;
  std::size_t best_len = 0;
  for (const Layer& l : m.layers) {
    const std::string prefix = l.path + "/";
    if (path.size() > prefix.size() && path.compare(0, prefix.size(), prefix) == 0 &&
        prefix.size() > best_len) {
      best = &l;
      best_len = prefix.size();
    }
  }
  return best;
}

/// Include scanning reads the RAW lines (the include path is a string
/// literal, which the code view blanks out); the code view only gates out
/// includes sitting inside comments.
void check_includes(FileContext& ctx, const std::vector<std::string>& raw,
                    const std::vector<std::string>& code,
                    const fs::path& root) {
  const Manifest& m = *ctx.manifest;
  for (std::size_t li = 0; li < raw.size(); ++li) {
    const std::string& line = raw[li];
    int lineno = static_cast<int>(li) + 1;
    std::string gate = trim(code[li]);
    if (gate.empty() || gate[0] != '#') continue;
    std::string t = trim(line);
    if (t.empty() || t[0] != '#') continue;
    std::string directive = trim(t.substr(1));
    if (directive.rfind("include", 0) != 0) continue;
    std::string rest = trim(directive.substr(7));
    if (rest.empty()) continue;
    if (rest[0] == '<') {
      if (!ctx.det) continue;
      std::size_t close = rest.find('>');
      if (close == std::string::npos) continue;
      std::string header = rest.substr(1, close - 1);
      if (header == "thread") {
        ctx.flag(lineno, "det.thread",
                 "<thread> in determinism scope — threads only in the sweep "
                 "runner");
      } else if (header == "random") {
        ctx.flag(lineno, "det.rand",
                 "<random> in determinism scope — use util/rng.hpp streams");
      } else if (header == "ctime" || header == "time.h" ||
                 header == "sys/time.h") {
        ctx.flag(lineno, "det.wall-clock",
                 "<" + header + "> in determinism scope — use virtual time");
      }
      continue;
    }
    if (rest[0] != '"') continue;
    std::size_t close = rest.find('"', 1);
    if (close == std::string::npos) continue;
    std::string inc = rest.substr(1, close - 1);
    // Resolve: project includes are root-relative ("util/bytes.hpp"); a
    // bare name ("foo.hpp") refers to the including file's own directory.
    std::string resolved = inc;
    if (!fs::exists(root / resolved)) {
      fs::path sibling = fs::path(ctx.file).parent_path() / inc;
      if (fs::exists(root / sibling)) resolved = sibling.generic_string();
    }
    const Layer* target = layer_of(m, resolved);
    if (!target || !ctx.layer) continue;  // unmapped handled elsewhere
    if (target == ctx.layer) continue;
    bool allowed =
        std::find(ctx.layer->deps.begin(), ctx.layer->deps.end(),
                  target->name) != ctx.layer->deps.end();
    if (!allowed) {
      ctx.flag(lineno, "layer.forbidden",
               "layer '" + ctx.layer->name + "' must not include '" +
                   resolved + "' (layer '" + target->name +
                   "' is not a declared dependency)");
      continue;
    }
    if (!target->public_headers.empty()) {
      std::string within = resolved.substr(target->path.size() + 1);
      bool is_public =
          std::find(target->public_headers.begin(),
                    target->public_headers.end(),
                    within) != target->public_headers.end();
      if (!is_public)
        ctx.flag(lineno, "layer.private-header",
                 "'" + resolved + "' is internal to layer '" + target->name +
                     "' (public: its declared interface headers only)");
    }
  }
}

void check_determinism(FileContext& ctx, const std::vector<Token>& toks) {
  static const std::set<std::string> kUnorderedTypes = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  static const std::set<std::string> kOrderedTypes = {
      "map", "set", "multimap", "multiset", "less", "greater"};
  static const std::set<std::string> kWallClock = {
      "system_clock", "steady_clock", "high_resolution_clock", "gettimeofday",
      "clock_gettime", "localtime", "gmtime"};
  static const std::set<std::string> kRand = {"rand", "srand", "rand_r",
                                             "drand48", "mrand48", "lrand48"};

  // Pass 1: names declared as unordered containers in this file.
  std::set<std::string> unordered_names;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!toks[i].ident || !kUnorderedTypes.count(toks[i].text)) continue;
    std::size_t j = skip_template_args(toks, i + 1);
    if (j > i + 1 && j < toks.size() && toks[j].ident)
      unordered_names.insert(toks[j].text);
  }

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& tk = toks[i];
    if (!tk.ident) continue;
    const std::string& s = tk.text;

    if (kRand.count(s) && tok_is(toks, i + 1, "(") && !member_access(toks, i)) {
      ctx.flag(tk.line, "det.rand",
               s + "() draws from ambient process state — use the seeded "
                   "util::Rng streams");
    }
    if (s == "random_device") {
      ctx.flag(tk.line, "det.random-device",
               "std::random_device is nondeterministic — derive seeds from "
               "the world seed");
    }
    if (kWallClock.count(s)) {
      ctx.flag(tk.line, "det.wall-clock",
               s + " reads the host clock — result-affecting code must use "
                   "virtual time (util::TimePoint)");
    }
    if ((s == "time" || s == "clock") && tok_is(toks, i + 1, "(") &&
        !member_access(toks, i)) {
      // Allow `obj.time()` accessors and non-std qualified names; flag bare
      // and std:: calls of the C library functions.
      bool qualified = i >= 2 && toks[i - 1].text == ":" &&
                       toks[i - 2].text == ":";
      if (!qualified || std_qualified(toks, i))
        ctx.flag(tk.line, "det.wall-clock",
                 s + "() reads the host clock — use virtual time");
    }
    if ((s == "thread" || s == "jthread") && std_qualified(toks, i)) {
      ctx.flag(tk.line, "det.thread",
               "std::" + s + " in determinism scope — threads only in the "
                             "sweep runner");
    }
    if (s == "async" && std_qualified(toks, i)) {
      ctx.flag(tk.line, "det.thread",
               "std::async in determinism scope — threads only in the sweep "
               "runner");
    }
    if (s == "hardware_concurrency") {
      ctx.flag(tk.line, "det.thread",
               "hardware_concurrency() makes behaviour depend on the host — "
               "take explicit job counts");
    }
    if (kOrderedTypes.count(s) && std_qualified(toks, i) &&
        tok_is(toks, i + 1, "<")) {
      // Inspect the first template argument; a trailing '*' means the
      // container is keyed (or the comparator ordered) by pointer value.
      int depth = 0;
      std::string last;
      for (std::size_t j = i + 1; j < toks.size(); ++j) {
        const std::string& u = toks[j].text;
        if (u == "<") {
          ++depth;
          continue;
        }
        if (u == ">" && --depth == 0) break;
        if (u == "," && depth == 1) break;
        last = u;
      }
      if (last == "*")
        ctx.flag(tk.line, "det.pointer-order",
                 "std::" + s + " keyed by pointer — iteration order depends "
                               "on allocation addresses");
    }
    if (s == "for" && tok_is(toks, i + 1, "(")) {
      // Range-for over an unordered container: for (decl : expr).
      int depth = 0;
      std::size_t colon = 0, end = 0;
      for (std::size_t j = i + 1; j < toks.size(); ++j) {
        const std::string& u = toks[j].text;
        if (u == "(") ++depth;
        if (u == ")" && --depth == 0) {
          end = j;
          break;
        }
        if (u == ":" && depth == 1 && !tok_is(toks, j + 1, ":") &&
            !(j > 0 && toks[j - 1].text == ":"))
          if (!colon) colon = j;
      }
      if (colon && end) {
        for (std::size_t j = colon + 1; j < end; ++j)
          if (toks[j].ident && unordered_names.count(toks[j].text)) {
            ctx.flag(toks[j].line, "det.unordered-iter",
                     "range-for over unordered container '" + toks[j].text +
                         "' — iteration order is unspecified");
            break;
          }
      }
    }
    if ((s == "begin" || s == "end" || s == "cbegin" || s == "cend") &&
        member_access(toks, i) && i >= 2 && toks[i - 2].ident &&
        unordered_names.count(toks[i - 2].text)) {
      ctx.flag(tk.line, "det.unordered-iter",
               "iterating unordered container '" + toks[i - 2].text +
                   "' — iteration order is unspecified");
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

void analyze_file(const std::string& relative_path, const std::string& text,
                  const Manifest& manifest, const fs::path& root,
                  std::vector<Diagnostic>& out) {
  std::vector<std::string> lines;
  {
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }

  FileContext ctx;
  ctx.file = relative_path;
  ctx.manifest = &manifest;
  ctx.layer = layer_of(manifest, relative_path);
  ctx.det = ctx.layer && manifest.deterministic(ctx.layer->name);
  ctx.sups = collect_suppressions(relative_path, lines, out);

  if (!ctx.layer) {
    ctx.flag(1, "layer.unmapped",
             "file is under no declared layer — add it to the manifest");
  }

  std::vector<std::string> code = strip_comments(lines);
  check_includes(ctx, lines, code, root);
  if (ctx.det) check_determinism(ctx, tokenize(code));

  // Collapse duplicate (line, rule) findings — e.g. .begin() and .end() on
  // the same loop line are one problem, not two.
  {
    std::set<std::pair<int, std::string>> seen;
    std::vector<Diagnostic> unique;
    for (Diagnostic& d : ctx.pending)
      if (seen.insert({d.line, d.rule}).second) unique.push_back(std::move(d));
    ctx.pending = std::move(unique);
  }

  // Apply suppressions: an allow on line L covers L and L+1.
  for (Diagnostic& d : ctx.pending) {
    for (Suppression& s : ctx.sups) {
      if (s.rule != d.rule) continue;
      if (d.line == s.line || d.line == s.line + 1) {
        d.suppressed = true;
        d.justification = s.justification;
        s.used = true;
        break;
      }
    }
    out.push_back(d);
  }
  for (const Suppression& s : ctx.sups) {
    if (!s.used)
      out.push_back({relative_path, s.line, "meta.unused-suppression",
                     "modcheck:allow(" + s.rule +
                         ") matches no diagnostic — delete it",
                     false, ""});
  }
}

Report analyze(const fs::path& root, const Manifest& manifest) {
  Report report;
  std::vector<fs::path> files;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc")
      files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());

  for (const fs::path& f : files) {
    std::ifstream in(f);
    std::stringstream buf;
    buf << in.rdbuf();
    std::string rel = fs::relative(f, root).generic_string();
    analyze_file(rel, buf.str(), manifest, root, report.diagnostics);
    ++report.files_scanned;
  }
  std::stable_sort(report.diagnostics.begin(), report.diagnostics.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.file != b.file) return a.file < b.file;
                     return a.line < b.line;
                   });
  return report;
}

std::size_t Report::violations() const {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics)
    if (!d.suppressed) ++n;
  return n;
}

std::size_t Report::suppressions() const {
  return diagnostics.size() - violations();
}

// ---------------------------------------------------------------------------
// JSON report
// ---------------------------------------------------------------------------

namespace {
std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}
}  // namespace

std::string to_json(const Report& report, const std::string& root) {
  std::ostringstream out;
  out << "{\n  \"version\": 1,\n  \"root\": \"" << json_escape(root)
      << "\",\n  \"summary\": {\"files_scanned\": " << report.files_scanned
      << ", \"violations\": " << report.violations()
      << ", \"suppressed\": " << report.suppressions()
      << "},\n  \"diagnostics\": [";
  for (std::size_t i = 0; i < report.diagnostics.size(); ++i) {
    const Diagnostic& d = report.diagnostics[i];
    out << (i ? ",\n    " : "\n    ") << "{\"file\": \"" << json_escape(d.file)
        << "\", \"line\": " << d.line << ", \"rule\": \"" << d.rule
        << "\", \"suppressed\": " << (d.suppressed ? "true" : "false");
    if (d.suppressed)
      out << ", \"justification\": \"" << json_escape(d.justification) << "\"";
    out << ", \"message\": \"" << json_escape(d.message) << "\"}";
  }
  out << (report.diagnostics.empty() ? "]\n}\n" : "\n  ]\n}\n");
  return out.str();
}

}  // namespace modcheck
