// modcheck — static enforcement of module black-box boundaries and
// simulator determinism.
//
// The DSN'07 comparison is only meaningful if the modular stack's
// microprotocols really are black boxes (no module exploits a neighbour's
// internals) and if simulated runs are bit-reproducible (the byte-identical
// bench guarantee PR 1/2 rely on). modcheck makes both invariants a build
// failure instead of a code-review hope:
//
//   * layering rules — a manifest (tools/modcheck/layers.toml) declares the
//     layer DAG over src/ directories; an #include crossing a non-declared
//     edge, or reaching a header the owning layer did not export as public,
//     is a diagnostic. The manifest itself is validated (unknown deps,
//     cycles).
//   * determinism rules — files in the manifest's determinism scope must
//     not call wall clocks or ambient RNGs, must not iterate unordered
//     containers or key ordered containers by pointer (both orders vary
//     across runs/ASLR), and must not spawn threads.
//
// Intentional exceptions are written in the code as
//   // modcheck:allow(<rule>): <justification>
// which suppresses <rule> on that line and the next; an empty justification
// is itself an error, and suppressions that match nothing are flagged so
// they cannot rot.
//
// The analyzer is deliberately a token-level scanner, not a full C++
// front-end: it strips comments/strings, tokenizes, and pattern-matches.
// The scanning substrate (lexer, diagnostics, suppression lifecycle) lives
// in tools/analyzer_common and is shared with wirecheck; this library holds
// only the layer/determinism rule logic.
#pragma once

#include <filesystem>
#include <iosfwd>
#include <string>
#include <vector>

#include "diagnostics.hpp"
#include "source.hpp"

namespace modcheck {

// --- Rule identifiers -------------------------------------------------------
// layer.forbidden       include crosses a layer edge not in the manifest
// layer.private-header  include reaches a non-public header of another layer
// layer.unmapped        file lives under root but under no declared layer
// det.rand              std::rand/srand/rand_r/drand48 or <random> engines
//                       outside util::Rng
// det.random-device     std::random_device (ambient, nondeterministic seed)
// det.wall-clock        system/steady/high_resolution clocks, time(),
//                       clock(), gettimeofday, clock_gettime
// det.unordered-iter    iteration over std::unordered_{map,set,...}
// det.pointer-order     std::map/set/less keyed or ordered by pointer value
// det.thread            std::thread/jthread/async/hardware_concurrency
// meta.bad-suppression  modcheck:allow with missing justification or
//                       unknown rule
// meta.unused-suppression  modcheck:allow matching no diagnostic

using Diagnostic = analyzer::Diagnostic;
using Report = analyzer::Report;

struct Layer {
  std::string name;
  std::string path;  ///< directory relative to root, e.g. "util"
  std::vector<std::string> deps;  ///< layer names this layer may include
  /// Headers (relative to the layer dir) other layers may include. Empty
  /// means every header is public.
  std::vector<std::string> public_headers;
};

struct Manifest {
  std::vector<Layer> layers;
  /// Layer names whose files are subject to the determinism rules.
  std::vector<std::string> determinism_layers;

  const Layer* find(const std::string& name) const;
  bool deterministic(const std::string& layer_name) const;
};

/// Parses a layers.toml-style manifest. Throws std::runtime_error with a
/// "<line>: message" description on malformed input, unknown dep names, or
/// a cyclic layer graph.
Manifest parse_manifest(std::istream& in);
Manifest load_manifest(const std::filesystem::path& file);

/// Scans every .hpp/.cpp under `root` against the manifest rules. When
/// `tree` is non-null it is used instead of re-reading the root (the
/// abcheck driver loads and lexes the tree once for all analyzers).
Report analyze(const std::filesystem::path& root, const Manifest& manifest,
               const analyzer::SourceTree* tree = nullptr);

/// Analyzes a single already-loaded file (fixture tests use this).
void analyze_file(const std::string& relative_path, const std::string& text,
                  const Manifest& manifest, const std::filesystem::path& root,
                  std::vector<Diagnostic>& out);

/// Machine-readable report (schema: {version, tool, root, summary,
/// diagnostics}).
std::string to_json(const Report& report, const std::string& root);

}  // namespace modcheck
