#include "wirecheck.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "lexer.hpp"
#include "suppress.hpp"

namespace wirecheck {
namespace fs = std::filesystem;

using analyzer::member_access;
using analyzer::split_lines;
using analyzer::split_ws;
using analyzer::std_qualified;
using analyzer::strip_comments;
using analyzer::Suppression;
using analyzer::Token;
using analyzer::tok_is;
using analyzer::tokenize;
using analyzer::trim;

namespace {

const std::set<std::string> kKnownRules = {
    "wire.asym",       "wire.unhandled",        "wire.dead",
    "hot.alloc",       "hot.function",          "hot.copy",
    "meta.bad-suppression", "meta.unused-suppression",
};

}  // namespace

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

bool Manifest::is_hot(const std::string& relative_path) const {
  return std::find(hot_files.begin(), hot_files.end(), relative_path) !=
         hot_files.end();
}

bool Manifest::is_app_event(const std::string& name) const {
  return std::find(app_events.begin(), app_events.end(), name) !=
         app_events.end();
}

Manifest parse_manifest(std::istream& in) {
  Manifest m;
  enum class Sec { kNone, kHot, kEvents, kFormat };
  Sec sec = Sec::kNone;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = trim(line);
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line.back() != ']')
        throw std::runtime_error(std::to_string(lineno) +
                                 ": unterminated section header");
      std::string section = trim(line.substr(1, line.size() - 2));
      if (section == "hot") {
        sec = Sec::kHot;
      } else if (section == "events") {
        sec = Sec::kEvents;
      } else if (section.rfind("format ", 0) == 0) {
        Format f;
        f.name = trim(section.substr(7));
        if (f.name.empty())
          throw std::runtime_error(std::to_string(lineno) +
                                   ": [format] needs a name");
        for (const Format& g : m.formats)
          if (g.name == f.name)
            throw std::runtime_error(std::to_string(lineno) +
                                     ": duplicate format " + f.name);
        m.formats.push_back(f);
        sec = Sec::kFormat;
      } else {
        throw std::runtime_error(std::to_string(lineno) +
                                 ": unknown section [" + section + "]");
      }
      continue;
    }
    std::size_t eq = line.find('=');
    if (eq == std::string::npos)
      throw std::runtime_error(std::to_string(lineno) +
                               ": expected key = value");
    std::string key = trim(line.substr(0, eq));
    std::string value = trim(line.substr(eq + 1));
    switch (sec) {
      case Sec::kHot:
        if (key != "files")
          throw std::runtime_error(std::to_string(lineno) +
                                   ": unknown [hot] key " + key);
        m.hot_files = split_ws(value);
        break;
      case Sec::kEvents:
        if (key == "registry") {
          m.events_registry = value;
        } else if (key == "app") {
          m.app_events = split_ws(value);
        } else {
          throw std::runtime_error(std::to_string(lineno) +
                                   ": unknown [events] key " + key);
        }
        break;
      case Sec::kFormat: {
        Format& f = m.formats.back();
        if (key == "file") {
          f.file = value;
        } else if (key == "encoder") {
          f.encoder = value;
        } else if (key == "decoder") {
          f.decoder = value;
        } else {
          throw std::runtime_error(std::to_string(lineno) +
                                   ": unknown [format] key " + key);
        }
        break;
      }
      case Sec::kNone:
        throw std::runtime_error(std::to_string(lineno) +
                                 ": key outside any section");
    }
  }
  for (const Format& f : m.formats) {
    if (f.file.empty() || f.encoder.empty() || f.decoder.empty())
      throw std::runtime_error("format " + f.name +
                               " needs file, encoder and decoder");
  }
  return m;
}

Manifest load_manifest(const fs::path& file) {
  std::ifstream in(file);
  if (!in) throw std::runtime_error("cannot open manifest " + file.string());
  try {
    return parse_manifest(in);
  } catch (const std::exception& e) {
    throw std::runtime_error(file.string() + ":" + e.what());
  }
}

// ---------------------------------------------------------------------------
// Sequence extraction
// ---------------------------------------------------------------------------

namespace {

/// One extracted Writer/Reader call sequence, normalized to the shared op
/// alphabet: u8 u16 u32 u64 f64 varint blob str rest call:<helper>.
struct OpSeq {
  int line = 0;
  std::vector<std::string> ops;
};

/// Writer method -> normalized op ("" = not a wire op, skip).
std::string map_writer_op(const std::string& m) {
  if (m == "u8" || m == "u16" || m == "u32" || m == "u64" || m == "f64" ||
      m == "varint" || m == "blob" || m == "str")
    return m;
  if (m == "i64") return "u64";
  if (m == "raw") return "rest";
  return "";
}

/// Reader method -> normalized op ("" = not a wire op, skip).
std::string map_reader_op(const std::string& m) {
  if (m == "u8" || m == "u16" || m == "u32" || m == "u64" || m == "f64" ||
      m == "varint" || m == "blob" || m == "str")
    return m;
  if (m == "i64") return "u64";
  if (m == "rest" || m == "raw") return "rest";
  return "";
}

/// encode_message/decode_message -> "message"; bare encode/decode -> "".
std::string helper_suffix(const std::string& name) {
  std::string s = name;
  if (s.rfind("encode", 0) == 0) s = s.substr(6);
  else if (s.rfind("decode", 0) == 0) s = s.substr(6);
  if (!s.empty() && s[0] == '_') s = s.substr(1);
  return s;
}

/// Post-processing: a u32 length immediately followed by a
/// position-bounded slice is a zero-copy blob read; unlength'd slices and
/// duplicate trailing-rest reads collapse to one "rest".
void normalize_ops(std::vector<std::string>& ops) {
  std::vector<std::string> out;
  for (std::string& op : ops) {
    if (op == "__sliceL") {
      if (!out.empty() && out.back() == "u32") {
        out.back() = "blob";
        continue;
      }
      op = "rest";
    }
    if (op == "rest" && !out.empty() && out.back() == "rest") continue;
    out.push_back(std::move(op));
  }
  ops = std::move(out);
}

std::string join_ops(const std::vector<std::string>& ops) {
  std::string s = "[";
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (i) s += ' ';
    s += ops[i];
  }
  s += ']';
  return s;
}

/// Brace depth at every token ('{' carries the pre-open depth, '}' the
/// post-close depth, so a block's braces sit at the depth of the enclosing
/// scope and its contents one deeper).
std::vector<int> brace_depth(const std::vector<Token>& t) {
  std::vector<int> depth(t.size(), 0);
  int d = 0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].text == "{") {
      depth[i] = d;
      ++d;
    } else if (t[i].text == "}") {
      if (d > 0) --d;
      depth[i] = d;
    } else {
      depth[i] = d;
    }
  }
  return depth;
}

/// Variables declared (or passed) as ByteWriter/ByteReader in this file.
std::set<std::string> var_names(const std::vector<Token>& t,
                                const char* type_name) {
  std::set<std::string> out;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!t[i].ident || t[i].text != type_name) continue;
    std::size_t j = i + 1;
    if (tok_is(t, j, "&")) ++j;
    if (j < t.size() && t[j].ident) out.insert(t[j].text);
  }
  return out;
}

/// Demux tag constants: `constexpr std::uint8_t kName = <literal>`. The
/// literal requirement keeps runtime reads (`const std::uint8_t kind =
/// r.u8();`) out of the tag set.
std::map<std::string, int> tag_constants(const std::vector<Token>& t) {
  std::map<std::string, int> tags;
  for (std::size_t i = 4; i + 3 < t.size(); ++i) {
    if (!t[i].ident || t[i].text != "uint8_t") continue;
    if (!(t[i - 1].text == ":" && t[i - 2].text == ":" &&
          t[i - 3].text == "std" &&
          (t[i - 4].text == "constexpr" || t[i - 4].text == "const")))
      continue;
    if (t[i + 1].ident && tok_is(t, i + 2, "=") && !t[i + 3].ident)
      tags.emplace(t[i + 1].text, t[i + 1].line);
  }
  return tags;
}

/// Collects normalized Reader ops over the token range [a, b).
void collect_reader_ops(const std::vector<Token>& t, std::size_t a,
                        std::size_t b, const std::set<std::string>& readers,
                        std::vector<std::string>& ops) {
  for (std::size_t j = a; j < b && j < t.size(); ++j) {
    const Token& tk = t[j];
    if (!tk.ident) continue;
    // payload.slice(r.position()[, len]) — zero-copy trailing read. Must be
    // checked before the member-op pattern below consumes the tokens.
    if (tk.text == "slice" && member_access(t, j) && tok_is(t, j + 1, "(") &&
        j + 4 < t.size() && t[j + 2].ident && readers.count(t[j + 2].text) &&
        tok_is(t, j + 3, ".") && tok_is(t, j + 4, "position")) {
      bool with_len = tok_is(t, j + 5, "(") && tok_is(t, j + 6, ")") &&
                      tok_is(t, j + 7, ",");
      ops.push_back(with_len ? "__sliceL" : "rest");
      continue;
    }
    // r.<op>(...)
    if (readers.count(tk.text) && tok_is(t, j + 1, ".") && j + 3 < t.size() &&
        t[j + 2].ident && tok_is(t, j + 3, "(")) {
      std::string op = map_reader_op(t[j + 2].text);
      if (!op.empty()) ops.push_back(op);
      j += 2;
      continue;
    }
    // decode_X(r, ...) helper call
    if (tk.text.rfind("decode", 0) == 0 && tok_is(t, j + 1, "(") &&
        j + 2 < t.size() && t[j + 2].ident && readers.count(t[j + 2].text)) {
      ops.push_back("call:" + helper_suffix(tk.text));
      continue;
    }
  }
}

/// Collects normalized Writer ops over the token range [a, b) (format-pair
/// bodies: no tag terminates the sequence; take() is just skipped).
void collect_writer_ops(const std::vector<Token>& t, std::size_t a,
                        std::size_t b, const std::set<std::string>& writers,
                        std::vector<std::string>& ops) {
  for (std::size_t j = a; j < b && j < t.size(); ++j) {
    const Token& tk = t[j];
    if (!tk.ident) continue;
    if (writers.count(tk.text) && tok_is(t, j + 1, ".") && j + 3 < t.size() &&
        t[j + 2].ident && tok_is(t, j + 3, "(")) {
      std::string op = map_writer_op(t[j + 2].text);
      if (!op.empty()) ops.push_back(op);
      j += 2;
      continue;
    }
    if (tk.text.rfind("encode", 0) == 0 && tok_is(t, j + 1, "(") &&
        j + 2 < t.size() && t[j + 2].ident && writers.count(t[j + 2].text)) {
      ops.push_back("call:" + helper_suffix(tk.text));
      continue;
    }
  }
}

/// Every `<writer>.u8(<tag>)`-started encode sequence, keyed by tag. A
/// sequence ends at take(), at the start of another tagged sequence, or
/// when its enclosing block closes (if/else encode branches).
void extract_tag_encoders(const std::vector<Token>& t,
                          const std::vector<int>& depth,
                          const std::set<std::string>& writers,
                          const std::map<std::string, int>& tags,
                          std::map<std::string, std::vector<OpSeq>>& out) {
  for (std::size_t i = 0; i + 5 < t.size(); ++i) {
    if (!t[i].ident || !writers.count(t[i].text)) continue;
    if (!(tok_is(t, i + 1, ".") && tok_is(t, i + 2, "u8") &&
          tok_is(t, i + 3, "(") && t[i + 4].ident &&
          tags.count(t[i + 4].text) && tok_is(t, i + 5, ")")))
      continue;
    const std::string tag = t[i + 4].text;
    const int d0 = depth[i];
    OpSeq seq;
    seq.line = t[i].line;
    std::size_t j = i + 6;
    for (; j < t.size(); ++j) {
      if (depth[j] < d0) break;
      if (!t[j].ident) continue;
      if (writers.count(t[j].text) && tok_is(t, j + 1, ".") &&
          j + 3 < t.size() && t[j + 2].ident && tok_is(t, j + 3, "(")) {
        const std::string& m = t[j + 2].text;
        if (m == "take") break;
        if (m == "u8" && j + 5 < t.size() && t[j + 4].ident &&
            tags.count(t[j + 4].text) && tok_is(t, j + 5, ")"))
          break;  // next tagged sequence; the outer loop re-detects it
        std::string op = map_writer_op(m);
        if (!op.empty()) seq.ops.push_back(op);
        j += 2;
        continue;
      }
      if (t[j].text.rfind("encode", 0) == 0 && tok_is(t, j + 1, "(") &&
          j + 2 < t.size() && t[j + 2].ident && writers.count(t[j + 2].text)) {
        seq.ops.push_back("call:" + helper_suffix(t[j].text));
        continue;
      }
    }
    normalize_ops(seq.ops);
    out[tag].push_back(std::move(seq));
    i = j - 1;  // resume at the terminator (it may start the next sequence)
  }
}

/// Every decoder branch keyed by tag. Recognized branch heads:
///   case <tag>:            ops until the next case/default or block end
///   <x> == <tag> (if)      ops inside the if body
///   <x> != <tag> (guard)   early-exit form: ops after the guard statement
void extract_tag_decoders(const std::vector<Token>& t,
                          const std::vector<int>& depth,
                          const std::set<std::string>& readers,
                          const std::map<std::string, int>& tags,
                          std::map<std::string, std::vector<OpSeq>>& out) {
  auto matching_close = [&](std::size_t open) {
    for (std::size_t m = open + 1; m < t.size(); ++m)
      if (t[m].text == "}" && depth[m] == depth[open]) return m;
    return t.size();
  };
  // Scans past the remainder of a parenthesized condition; returns the
  // index of the ')' that closes it (or t.size()).
  auto condition_close = [&](std::size_t from) {
    int pd = 0;
    for (std::size_t j = from; j < t.size(); ++j) {
      if (t[j].text == "(") ++pd;
      else if (t[j].text == ")") {
        if (pd == 0) return j;
        --pd;
      } else if (t[j].text == ";" || t[j].text == "{") {
        break;  // not inside an if-condition after all
      }
    }
    return t.size();
  };

  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!t[i].ident || !tags.count(t[i].text)) continue;
    const std::string tag = t[i].text;
    const int d0 = depth[i];

    if (i >= 1 && t[i - 1].text == "case") {
      std::size_t end = t.size();
      for (std::size_t j = i + 1; j < t.size(); ++j) {
        if (depth[j] < d0 ||
            (depth[j] == d0 &&
             (t[j].text == "case" ||
              (t[j].text == "default" && tok_is(t, j + 1, ":"))))) {
          end = j;
          break;
        }
      }
      OpSeq seq;
      seq.line = t[i].line;
      collect_reader_ops(t, i + 1, end, readers, seq.ops);
      normalize_ops(seq.ops);
      out[tag].push_back(std::move(seq));
      continue;
    }

    const bool eq = (i >= 2 && t[i - 1].text == "=" && t[i - 2].text == "=" &&
                     !(i >= 3 && (t[i - 3].text == "!" || t[i - 3].text == "=" ||
                                  t[i - 3].text == "<" || t[i - 3].text == ">"))) ||
                    (i + 2 < t.size() && t[i + 1].text == "=" &&
                     t[i + 2].text == "=");
    const bool ne = (i >= 2 && t[i - 1].text == "=" && t[i - 2].text == "!") ||
                    (i + 2 < t.size() && t[i + 1].text == "!" &&
                     t[i + 2].text == "=");
    if (!eq && !ne) continue;

    std::size_t close = condition_close(i + 1);
    if (close == t.size()) continue;
    // Locate the statement/block guarded by the condition.
    std::size_t body_begin, body_end;
    if (tok_is(t, close + 1, "{")) {
      body_begin = close + 2;
      body_end = matching_close(close + 1);
    } else {
      body_begin = close + 1;
      body_end = body_begin;
      while (body_end < t.size() && t[body_end].text != ";") ++body_end;
    }

    OpSeq seq;
    seq.line = t[i].line;
    if (eq) {
      collect_reader_ops(t, body_begin, body_end, readers, seq.ops);
    } else {
      // Guard form `if (kind != kTag) return;` — the decode follows the
      // guard, in the same enclosing block.
      std::size_t j = body_end + 1;
      std::size_t stop = j;
      while (stop < t.size() && depth[stop] >= d0) ++stop;
      collect_reader_ops(t, j, stop, readers, seq.ops);
    }
    normalize_ops(seq.ops);
    out[tag].push_back(std::move(seq));
  }
}

/// Finds the body token range of the definition of function `fn` (a call
/// is followed by ';' or an expression; a definition by an optional
/// const/noexcept/override and '{').
bool find_function_body(const std::vector<Token>& t,
                        const std::vector<int>& depth, const std::string& fn,
                        std::size_t& body_begin, std::size_t& body_end,
                        int& def_line) {
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!t[i].ident || t[i].text != fn || !tok_is(t, i + 1, "(")) continue;
    int pd = 0;
    std::size_t j = i + 1;
    for (; j < t.size(); ++j) {
      if (t[j].text == "(") ++pd;
      else if (t[j].text == ")" && --pd == 0) break;
    }
    if (j >= t.size()) continue;
    std::size_t k = j + 1;
    while (k < t.size() && t[k].ident &&
           (t[k].text == "const" || t[k].text == "noexcept" ||
            t[k].text == "override" || t[k].text == "final"))
      ++k;
    if (!tok_is(t, k, "{")) continue;
    body_begin = k + 1;
    body_end = t.size();
    for (std::size_t m = k + 1; m < t.size(); ++m)
      if (t[m].text == "}" && depth[m] == depth[k]) {
        body_end = m;
        break;
      }
    def_line = t[i].line;
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Cross-reference facts (events / module ids across the whole tree)
// ---------------------------------------------------------------------------

struct Site {
  std::size_t file_idx = 0;
  int line = 0;
};

struct CrossFacts {
  std::map<std::string, Site> raised_events, bound_events;
  std::map<std::string, Site> sent_modules, bound_modules;
  std::set<std::string> registry;  ///< names declared in the registry header
  bool registry_seen = false;
};

/// Token range [abegin, aend) of the argno-th (1-based) argument of the
/// call whose '(' is at `open`.
bool call_arg_range(const std::vector<Token>& t, std::size_t open, int argno,
                    std::size_t& abegin, std::size_t& aend) {
  int pd = 0, bd = 0, sd = 0, arg = 1;
  std::size_t begin = open + 1;
  for (std::size_t j = open; j < t.size(); ++j) {
    const std::string& s = t[j].text;
    if (s == "(") {
      if (++pd == 1) begin = j + 1;
      continue;
    }
    if (s == ")") {
      if (--pd == 0) {
        if (arg == argno) {
          abegin = begin;
          aend = j;
          return true;
        }
        return false;
      }
      continue;
    }
    if (pd == 1) {
      if (s == "{") ++bd;
      else if (s == "}") --bd;
      else if (s == "[") ++sd;
      else if (s == "]") --sd;
      else if (s == "," && bd == 0 && sd == 0) {
        if (arg == argno) {
          abegin = begin;
          aend = j;
          return true;
        }
        ++arg;
        begin = j + 1;
      }
    }
  }
  return false;
}

/// First identifier in [a, b) carrying the given registry prefix.
const Token* arg_registry_name(const std::vector<Token>& t, std::size_t a,
                               std::size_t b, const char* prefix) {
  for (std::size_t j = a; j < b && j < t.size(); ++j)
    if (t[j].ident && t[j].text.rfind(prefix, 0) == 0) return &t[j];
  return nullptr;
}

void record_site(std::map<std::string, Site>& facts, const std::string& name,
                 std::size_t file_idx, int line) {
  facts.emplace(name, Site{file_idx, line});
}

void collect_cross_facts(const std::vector<Token>& t, std::size_t file_idx,
                         CrossFacts& facts) {
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!t[i].ident || !tok_is(t, i + 1, "(")) continue;
    const std::string& s = t[i].text;
    std::size_t a, b;
    if (s == "bind") {
      if (call_arg_range(t, i + 1, 1, a, b))
        if (const Token* n = arg_registry_name(t, a, b, "kEv"))
          record_site(facts.bound_events, n->text, file_idx, n->line);
    } else if (s == "bind_wire") {
      if (call_arg_range(t, i + 1, 1, a, b))
        if (const Token* n = arg_registry_name(t, a, b, "kMod"))
          record_site(facts.bound_modules, n->text, file_idx, n->line);
    } else if (s == "local" && i >= 3 && t[i - 1].text == ":" &&
               t[i - 2].text == ":" && t[i - 3].text == "Event") {
      if (call_arg_range(t, i + 1, 1, a, b))
        if (const Token* n = arg_registry_name(t, a, b, "kEv"))
          record_site(facts.raised_events, n->text, file_idx, n->line);
    } else if (s == "send_wire" || s == "send_wire_to_others") {
      const int argno = (s == "send_wire") ? 2 : 1;
      if (call_arg_range(t, i + 1, argno, a, b))
        if (const Token* n = arg_registry_name(t, a, b, "kMod"))
          record_site(facts.sent_modules, n->text, file_idx, n->line);
    }
  }
}

/// Registry declarations: `... EventType kEvX = ...` / `... ModuleId kModX
/// = ...` in the manifest-named header.
void parse_registry(const std::vector<Token>& t, CrossFacts& facts) {
  facts.registry_seen = true;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (!t[i].ident) continue;
    const bool ev = t[i].text == "EventType";
    const bool mod = t[i].text == "ModuleId";
    if (!ev && !mod) continue;
    if (!t[i + 1].ident || !tok_is(t, i + 2, "=")) continue;
    const char* prefix = ev ? "kEv" : "kMod";
    if (t[i + 1].text.rfind(prefix, 0) == 0) facts.registry.insert(t[i + 1].text);
  }
}

// ---------------------------------------------------------------------------
// Per-file analysis
// ---------------------------------------------------------------------------

struct FileWork {
  std::string rel;
  std::vector<Suppression> sups;
  std::vector<Diagnostic> pending;

  void flag(int line, const std::string& rule, const std::string& message) {
    pending.push_back({rel, line, rule, message, false, ""});
  }
};

void check_hot_rules(FileWork& wk, const std::vector<Token>& toks) {
  static const std::set<std::string> kAllocCalls = {"malloc", "calloc",
                                                    "realloc"};
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& tk = toks[i];
    if (!tk.ident) continue;
    const std::string& s = tk.text;
    if (s == "new" || s == "make_shared" || s == "make_unique") {
      wk.flag(tk.line, "hot.alloc",
              s + " in a hot-path file — per-message heap allocation undoes "
                  "the zero-copy fan-out");
    } else if (kAllocCalls.count(s) && tok_is(toks, i + 1, "(")) {
      wk.flag(tk.line, "hot.alloc",
              s + "() in a hot-path file — per-message heap allocation");
    } else if (s == "function" && std_qualified(toks, i)) {
      wk.flag(tk.line, "hot.function",
              "std::function in a hot-path file — each construction may "
              "allocate; use util::InlineFn or a plain pointer");
    } else if ((s == "to_bytes" || s == "detach") && member_access(toks, i) &&
               tok_is(toks, i + 1, "(")) {
      wk.flag(tk.line, "hot.copy",
              s + "() deep-copies the payload in a hot-path file — pass the "
                  "ref-counted Payload view instead");
    }
  }
}

void check_tag_contracts(FileWork& wk, const std::vector<Token>& toks,
                         const std::vector<int>& depth) {
  const std::map<std::string, int> tags = tag_constants(toks);
  if (tags.empty()) return;
  const std::set<std::string> writers = var_names(toks, "ByteWriter");
  const std::set<std::string> readers = var_names(toks, "ByteReader");

  std::map<std::string, std::vector<OpSeq>> enc, dec;
  if (!writers.empty()) extract_tag_encoders(toks, depth, writers, tags, enc);
  if (!readers.empty()) extract_tag_decoders(toks, depth, readers, tags, dec);

  for (const auto& [tag, line] : tags) {
    const auto ei = enc.find(tag);
    const auto di = dec.find(tag);
    const bool has_enc = ei != enc.end() && !ei->second.empty();
    const bool has_dec = di != dec.end() && !di->second.empty();
    if (has_enc && !has_dec) {
      wk.flag(ei->second.front().line, "wire.unhandled",
              "wire tag '" + tag +
                  "' is sent but has no decoder branch in this file — every "
                  "receiver drops it");
      continue;
    }
    if (has_dec && !has_enc) {
      wk.flag(di->second.front().line, "wire.dead",
              "wire tag '" + tag +
                  "' has a decoder branch but is never sent — dead protocol "
                  "surface");
      continue;
    }
    if (!has_enc || !has_dec) continue;  // unused constant: not a wire tag
    const OpSeq& d0 = di->second.front();
    for (const OpSeq& e : ei->second) {
      if (e.ops != d0.ops) {
        wk.flag(e.line, "wire.asym",
                "message kind '" + tag + "': encoder writes " +
                    join_ops(e.ops) + " but decoder (line " +
                    std::to_string(d0.line) + ") reads " + join_ops(d0.ops));
      }
    }
    for (std::size_t k = 1; k < di->second.size(); ++k) {
      const OpSeq& d = di->second[k];
      if (d.ops != d0.ops && d.ops != ei->second.front().ops) {
        wk.flag(d.line, "wire.asym",
                "message kind '" + tag + "': decoder reads " +
                    join_ops(d.ops) + " but encoder (line " +
                    std::to_string(ei->second.front().line) + ") writes " +
                    join_ops(ei->second.front().ops));
      }
    }
  }
}

void check_formats(FileWork& wk, const std::vector<Token>& toks,
                   const std::vector<int>& depth, const Manifest& manifest) {
  const std::set<std::string> writers = var_names(toks, "ByteWriter");
  const std::set<std::string> readers = var_names(toks, "ByteReader");
  for (const Format& f : manifest.formats) {
    if (f.file != wk.rel) continue;
    std::size_t eb, ee, db, de;
    int eline = 1, dline = 1;
    const bool enc_found =
        find_function_body(toks, depth, f.encoder, eb, ee, eline);
    const bool dec_found =
        find_function_body(toks, depth, f.decoder, db, de, dline);
    if (!enc_found || !dec_found) {
      wk.flag(1, "wire.asym",
              "format '" + f.name + "': " +
                  (!enc_found ? "encoder '" + f.encoder + "'"
                              : "decoder '" + f.decoder + "'") +
                  " has no definition in this file — fix the wire.toml entry");
      continue;
    }
    OpSeq enc, dec;
    enc.line = eline;
    dec.line = dline;
    collect_writer_ops(toks, eb, ee, writers, enc.ops);
    collect_reader_ops(toks, db, de, readers, dec.ops);
    normalize_ops(enc.ops);
    normalize_ops(dec.ops);
    if (enc.ops != dec.ops) {
      wk.flag(eline, "wire.asym",
              "format '" + f.name + "': encoder '" + f.encoder + "' writes " +
                  join_ops(enc.ops) + " but decoder '" + f.decoder +
                  "' (line " + std::to_string(dline) + ") reads " +
                  join_ops(dec.ops));
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Entry point
// ---------------------------------------------------------------------------

Report analyze(const fs::path& root, const Manifest& manifest,
               const analyzer::SourceTree* tree) {
  analyzer::SourceTree local;
  if (!tree) {
    local = analyzer::load_tree(root);
    tree = &local;
  }

  Report report;
  std::vector<FileWork> works;
  works.reserve(tree->files.size());
  CrossFacts facts;

  // Pass 1: per-file contracts; cross-file facts are only collected here.
  for (const analyzer::SourceFile& src : tree->files) {
    const std::string& rel = src.rel;

    FileWork wk;
    wk.rel = rel;
    // Malformed allows go straight to the report: they are never
    // suppressible and never participate in matching.
    wk.sups = analyzer::collect_suppressions("wirecheck", kKnownRules, rel,
                                             src.lines, report.diagnostics);

    const std::vector<Token>& toks = src.tokens;
    const std::vector<int> depth = brace_depth(toks);

    check_tag_contracts(wk, toks, depth);
    check_formats(wk, toks, depth, manifest);
    if (manifest.is_hot(rel)) check_hot_rules(wk, toks);

    collect_cross_facts(toks, works.size(), facts);
    if (!manifest.events_registry.empty() && rel == manifest.events_registry)
      parse_registry(toks, facts);

    works.push_back(std::move(wk));
    ++report.files_scanned;
  }

  // Pass 2: whole-tree send/handler cross-reference. When the registry
  // header was scanned, facts are restricted to its declared names so
  // unrelated kEv*/kMod*-looking identifiers cannot misfire.
  auto in_registry = [&](const std::string& name) {
    return !facts.registry_seen || facts.registry.count(name) != 0;
  };
  auto cross = [&](const std::map<std::string, Site>& have,
                   const std::map<std::string, Site>& want,
                   const std::string& rule, const std::string& what,
                   const std::string& did, const std::string& missing) {
    for (const auto& [name, site] : have) {
      if (!in_registry(name) || manifest.is_app_event(name)) continue;
      if (want.count(name)) continue;
      works[site.file_idx].flag(site.line, rule,
                                what + " '" + name + "' " + did + " but " +
                                    missing);
    }
  };
  cross(facts.raised_events, facts.bound_events, "wire.unhandled", "event",
        "is raised", "no composition binds a handler for it");
  cross(facts.bound_events, facts.raised_events, "wire.dead", "event",
        "has a bound handler", "nothing ever raises it");
  cross(facts.sent_modules, facts.bound_modules, "wire.unhandled",
        "module id", "is sent to the wire",
        "no composition binds a demux handler for it");
  cross(facts.bound_modules, facts.sent_modules, "wire.dead", "module id",
        "has a bound demux handler", "nothing ever sends to it");

  // Pass 3: suppression lifecycle, per file.
  for (FileWork& wk : works) {
    analyzer::dedupe_by_line_rule(wk.pending);
    analyzer::apply_suppressions("wirecheck", wk.rel, wk.sups, wk.pending,
                                 report.diagnostics);
  }
  report.sort_stable();
  return report;
}

std::string to_json(const Report& report, const std::string& root) {
  return analyzer::to_json(report, "wirecheck", root);
}

}  // namespace wirecheck
