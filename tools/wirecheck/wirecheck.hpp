// wirecheck — whole-program static verification of the wire contracts the
// paper's byte accounting depends on.
//
// Every message in this repo is hand-encoded through util::ByteWriter and
// hand-decoded through util::ByteReader; the §5.2 message/byte counts (and
// PR 4's exact cross-validation) are only as honest as those call sequences
// are symmetric. wirecheck makes three contract families a build failure:
//
//   * wire.asym — for every message kind (a `constexpr std::uint8_t kTag`
//     demux constant, or a manifest-declared untagged [format] pair), the
//     Writer call sequence in the encoder must match the Reader call
//     sequence in the decoder in count, width, and order. Sequences are
//     normalized (i64 ≡ u64, raw/rest/position-slices ≡ trailing bytes,
//     u32-length + slice ≡ blob, encode_X/decode_X helper calls match by
//     name) so zero-copy decoders compare equal to their copying encoders.
//   * wire.unhandled / wire.dead — every wire tag that is sent must have a
//     decoder branch and every demux module id / local event type that is
//     sent or raised must have a bind_wire/bind handler somewhere in the
//     scanned tree (and vice versa: decoders, handlers, and tags nobody
//     ever sends are flagged as dead). Application-facing events the tree
//     intentionally leaves to harness code are exempted in the manifest.
//   * hot.alloc / hot.function / hot.copy — files marked hot in the
//     manifest (event queue, network, stack dispatch, channel) must not
//     heap-allocate per message (new/malloc/make_shared/make_unique),
//     construct std::function, or deep-copy payloads (to_bytes/detach);
//     each would undo PR 1's zero-copy fan-out work.
//
// Intentional exceptions use the shared suppression syntax
//   // wirecheck:allow(<rule>): <justification>
// with the same lifecycle rules as modcheck (empty justification and stale
// allows are errors). The scanning substrate is tools/analyzer_common; like
// modcheck, wirecheck is a token-level scanner, not a C++ front-end.
#pragma once

#include <filesystem>
#include <iosfwd>
#include <string>
#include <vector>

#include "diagnostics.hpp"
#include "source.hpp"

namespace wirecheck {

// --- Rule identifiers -------------------------------------------------------
// wire.asym             encoder/decoder Writer/Reader sequences differ
// wire.unhandled        tag/event/module id sent or raised with no handler
// wire.dead             tag/event/module id handled but never sent/raised
// hot.alloc             per-message heap allocation in a hot file
// hot.function          std::function construction in a hot file
// hot.copy              payload deep-copy (to_bytes/detach) in a hot file
// meta.bad-suppression  wirecheck:allow with missing justification or
//                       unknown rule
// meta.unused-suppression  wirecheck:allow matching no diagnostic

using Diagnostic = analyzer::Diagnostic;
using Report = analyzer::Report;

/// An untagged encoder/decoder pair (no u8 demux constant starts the
/// sequence): both functions must live in `file` and are matched body-wide.
struct Format {
  std::string name;
  std::string file;     ///< path relative to the scanned root
  std::string encoder;  ///< function name (unqualified)
  std::string decoder;  ///< function name (unqualified)
};

struct Manifest {
  /// Files (relative to root) subject to the hot-path hygiene rules.
  std::vector<std::string> hot_files;
  /// Header declaring the EventType/ModuleId registry (kEv*/kMod*
  /// constants); empty disables the cross-reference pass.
  std::string events_registry;
  /// Event/module names exempt from the send/handler cross-reference
  /// (application-facing events handled outside the scanned tree).
  std::vector<std::string> app_events;
  std::vector<Format> formats;

  bool is_hot(const std::string& relative_path) const;
  bool is_app_event(const std::string& name) const;
};

/// Parses a wire.toml-style manifest ([hot], [events], [format <name>]
/// sections). Throws std::runtime_error on malformed input.
Manifest parse_manifest(std::istream& in);
Manifest load_manifest(const std::filesystem::path& file);

/// Scans every .hpp/.cpp under `root` against the three contract families.
/// When `tree` is non-null it is used instead of re-reading the root (the
/// abcheck driver loads and lexes the tree once for all analyzers).
Report analyze(const std::filesystem::path& root, const Manifest& manifest,
               const analyzer::SourceTree* tree = nullptr);

/// Machine-readable report (schema: {version, tool, root, summary,
/// diagnostics}).
std::string to_json(const Report& report, const std::string& root);

}  // namespace wirecheck
