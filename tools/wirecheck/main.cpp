// wirecheck CLI.
//
//   wirecheck --root src --manifest tools/wirecheck/wire.toml
//       [--json report.json] [--sarif report.sarif] [--quiet]
//
// Prints one "file:line: rule — message" diagnostic per finding (suppressed
// findings are listed with their justification unless --quiet) and exits
// nonzero when any unsuppressed violation remains.
#include <fstream>
#include <iostream>
#include <string>

#include "sarif.hpp"
#include "wirecheck.hpp"

int main(int argc, char** argv) {
  std::string root, manifest_path, json_path, sarif_path;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "wirecheck: " << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--root") {
      root = value("--root");
    } else if (arg == "--manifest") {
      manifest_path = value("--manifest");
    } else if (arg == "--json") {
      json_path = value("--json");
    } else if (arg == "--sarif") {
      sarif_path = value("--sarif");
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: wirecheck --root <dir> --manifest <wire.toml> "
                   "[--json <out>] [--sarif <out>] [--quiet]\n";
      return 0;
    } else {
      std::cerr << "wirecheck: unknown argument " << arg << "\n";
      return 2;
    }
  }
  if (root.empty() || manifest_path.empty()) {
    std::cerr << "wirecheck: --root and --manifest are required (see --help)\n";
    return 2;
  }

  wirecheck::Manifest manifest;
  try {
    manifest = wirecheck::load_manifest(manifest_path);
  } catch (const std::exception& e) {
    std::cerr << "wirecheck: bad manifest: " << e.what() << "\n";
    return 2;
  }

  wirecheck::Report report;
  analyzer::SourceTree tree;
  try {
    tree = analyzer::load_tree(root);
    report = wirecheck::analyze(root, manifest, &tree);
  } catch (const std::exception& e) {
    std::cerr << "wirecheck: " << e.what() << "\n";
    return 2;
  }

  for (const wirecheck::Diagnostic& d : report.diagnostics) {
    if (d.suppressed) {
      if (!quiet)
        std::cout << d.file << ":" << d.line << ": " << d.rule
                  << " — suppressed: " << d.justification << "\n";
      continue;
    }
    std::cout << d.file << ":" << d.line << ": " << d.rule << " — "
              << d.message << "\n";
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "wirecheck: cannot write " << json_path << "\n";
      return 2;
    }
    out << wirecheck::to_json(report, root);
  }

  if (!sarif_path.empty()) {
    std::ofstream out(sarif_path);
    if (!out) {
      std::cerr << "wirecheck: cannot write " << sarif_path << "\n";
      return 2;
    }
    out << analyzer::to_sarif({{"wirecheck", root, &report, &tree}});
  }

  std::cout << "wirecheck: " << report.files_scanned << " files, "
            << report.violations() << " violation(s), "
            << report.suppressions() << " suppressed\n";
  return report.violations() == 0 ? 0 : 1;
}
