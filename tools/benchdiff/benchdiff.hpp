// benchdiff — drift detector for results/*.json bench outputs.
//
// Flattens two JSON files into path → scalar maps ("points[3].mean" →
// "8.665928") and reports every structural or value difference. Values
// compare textually by default — the simulator is deterministic, so a
// regenerated bench result must be byte-equal field by field; a relative
// tolerance can be supplied for cross-toolchain floating-point slack.
//
// Plain C++17, standard library only (same bootstrap constraints as
// modcheck), so CI can build and run it without the simulator libraries.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace benchdiff {

/// Flat view of a JSON document: dotted/bracketed paths to scalar tokens.
/// Numbers keep their source spelling; strings are unescaped.
using FlatJson = std::map<std::string, std::string>;

/// Parses JSON text into its flat form. Throws std::runtime_error with a
/// byte offset on malformed input.
FlatJson flatten_json(const std::string& text);

/// Reads and flattens a file. Throws std::runtime_error on I/O failure.
FlatJson flatten_file(const std::string& path);

struct DiffOptions {
  /// Relative tolerance for numeric values (0 = exact textual match).
  /// |a−b| <= tol · max(|a|, |b|) passes when both sides parse as numbers.
  double tolerance = 0.0;
};

/// One human-readable line per difference ("points[2].mean: 5.1 != 5.2",
/// "only in a.json: points[8]...."). Empty = no drift.
std::vector<std::string> diff(const FlatJson& a, const FlatJson& b,
                              const DiffOptions& opts = {});

}  // namespace benchdiff
