// benchdiff CLI: compare two bench result JSON files field by field.
//
//   benchdiff [--tol=REL] a.json b.json
//
// Exit codes: 0 = identical (within tolerance), 1 = drift detected,
// 2 = usage or I/O error. The deterministic simulator makes regenerated
// results exactly reproducible, so CI runs with no tolerance: any drift in
// a counter, mean, or CI is a regression (or an uncommitted result file).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "benchdiff.hpp"

int main(int argc, char** argv) {
  double tol = 0.0;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--tol=", 0) == 0) {
      char* end = nullptr;
      tol = std::strtod(arg.c_str() + 6, &end);
      if (end == arg.c_str() + 6 || *end != '\0' || tol < 0.0) {
        std::fprintf(stderr, "benchdiff: bad --tol value '%s'\n",
                     arg.c_str() + 6);
        return 2;
      }
    } else if (arg == "--help") {
      std::printf("usage: benchdiff [--tol=REL] a.json b.json\n");
      return 0;
    } else {
      files.push_back(arg);
    }
  }
  if (files.size() != 2) {
    std::fprintf(stderr, "usage: benchdiff [--tol=REL] a.json b.json\n");
    return 2;
  }

  try {
    const auto a = benchdiff::flatten_file(files[0]);
    const auto b = benchdiff::flatten_file(files[1]);
    const auto drift = benchdiff::diff(a, b, {tol});
    if (drift.empty()) {
      std::printf("benchdiff: %s == %s (%zu fields)\n", files[0].c_str(),
                  files[1].c_str(), a.size());
      return 0;
    }
    std::printf("benchdiff: %zu difference(s) between %s and %s:\n",
                drift.size(), files[0].c_str(), files[1].c_str());
    for (const auto& d : drift) std::printf("  %s\n", d.c_str());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "benchdiff: %s\n", e.what());
    return 2;
  }
}
