#include "benchdiff.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace benchdiff {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  FlatJson parse() {
    FlatJson out;
    skip_ws();
    value("", out);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content");
    return out;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json error at byte " + std::to_string(pos_) +
                             ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() const {
    if (pos_ >= text_.size()) {
      throw std::runtime_error("json error: unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  std::string string_token() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u':
            // Benchmark output is ASCII; keep the escape verbatim.
            out += "\\u";
            break;
          default: fail("bad escape");
        }
      } else {
        out += c;
      }
    }
  }

  void value(const std::string& path, FlatJson& out) {
    skip_ws();
    const char c = peek();
    if (c == '{') {
      object(path, out);
    } else if (c == '[') {
      array(path, out);
    } else if (c == '"') {
      out[path.empty() ? "." : path] = string_token();
    } else {
      // number / true / false / null: consume the bare token.
      std::size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '+' || text_[pos_] == '-' || text_[pos_] == '.' ||
              text_[pos_] == 'e' || text_[pos_] == 'E')) {
        ++pos_;
      }
      if (pos_ == start) fail("expected a value");
      out[path.empty() ? "." : path] = text_.substr(start, pos_ - start);
    }
  }

  void object(const std::string& path, FlatJson& out) {
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return;
    }
    while (true) {
      skip_ws();
      const std::string key = string_token();
      skip_ws();
      expect(':');
      value(path.empty() ? key : path + "." + key, out);
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return;
    }
  }

  void array(const std::string& path, FlatJson& out) {
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return;
    }
    std::size_t index = 0;
    while (true) {
      value(path + "[" + std::to_string(index++) + "]", out);
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

bool numbers_close(const std::string& a, const std::string& b, double tol) {
  char* enda = nullptr;
  char* endb = nullptr;
  const double va = std::strtod(a.c_str(), &enda);
  const double vb = std::strtod(b.c_str(), &endb);
  if (enda == a.c_str() || *enda != '\0') return false;  // not a number
  if (endb == b.c_str() || *endb != '\0') return false;
  return std::abs(va - vb) <= tol * std::max(std::abs(va), std::abs(vb));
}

}  // namespace

FlatJson flatten_json(const std::string& text) {
  return Parser(text).parse();
}

FlatJson flatten_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return flatten_json(ss.str());
}

std::vector<std::string> diff(const FlatJson& a, const FlatJson& b,
                              const DiffOptions& opts) {
  std::vector<std::string> out;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() || ib != b.end()) {
    if (ib == b.end() || (ia != a.end() && ia->first < ib->first)) {
      out.push_back("only in first: " + ia->first + " = " + ia->second);
      ++ia;
    } else if (ia == a.end() || ib->first < ia->first) {
      out.push_back("only in second: " + ib->first + " = " + ib->second);
      ++ib;
    } else {
      if (ia->second != ib->second &&
          !(opts.tolerance > 0.0 &&
            numbers_close(ia->second, ib->second, opts.tolerance))) {
        out.push_back(ia->first + ": " + ia->second + " != " + ib->second);
      }
      ++ia;
      ++ib;
    }
  }
  return out;
}

}  // namespace benchdiff
