// Replicated key-value store: state machine replication over atomic
// broadcast (the canonical use case that motivates the paper's protocol).
//
// Each replica applies SET/DEL commands in adelivery order. Because atomic
// broadcast delivers the same commands in the same total order everywhere,
// the replicas' states stay identical — even with concurrent conflicting
// writers and a replica crash in the middle of the run.
//
//   $ ./replicated_kv [--kind=modular|monolithic] [--n=5] [--crash]
#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/sim_group.hpp"
#include "util/flags.hpp"

using namespace modcast;

namespace {

/// One replica's state machine.
class KvStore {
 public:
  void apply(const std::string& command) {
    ++applied_;
    // Format: "SET key value" or "DEL key".
    if (command.rfind("SET ", 0) == 0) {
      auto space = command.find(' ', 4);
      data_[command.substr(4, space - 4)] = command.substr(space + 1);
    } else if (command.rfind("DEL ", 0) == 0) {
      data_.erase(command.substr(4));
    }
  }

  std::size_t fingerprint() const {
    std::size_t h = 1469598103934665603ull;
    for (const auto& [k, v] : data_) {
      h = (h ^ std::hash<std::string>{}(k + "=" + v)) * 1099511628211ull;
    }
    return h;
  }

  const std::map<std::string, std::string>& data() const { return data_; }
  std::size_t applied() const { return applied_; }

 private:
  std::map<std::string, std::string> data_;
  std::size_t applied_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv, {"kind", "n", "crash"});
  const std::string kind = flags.get("kind", "modular");
  const auto n = static_cast<std::size_t>(flags.get_int("n", 5));
  const bool crash = flags.get_bool("crash", true);

  core::SimGroupConfig cfg;
  cfg.n = n;
  cfg.stack.kind = (kind == "monolithic") ? core::StackKind::kMonolithic
                                          : core::StackKind::kModular;
  cfg.record_deliveries = false;
  core::SimGroup group(cfg);

  std::vector<KvStore> replicas(n);
  for (util::ProcessId p = 0; p < n; ++p) {
    group.process(p).set_deliver_handler(
        [&replicas, p](util::ProcessId, std::uint64_t,
                       const util::Bytes& payload) {
          replicas[p].apply(std::string(payload.begin(), payload.end()));
        });
  }
  group.start();

  // Concurrent writers: every replica's client hammers the same keys, so
  // without total order the replicas would diverge immediately.
  auto submit = [&group](util::ProcessId p, util::TimePoint at,
                         std::string cmd) {
    group.world().simulator().at(at, [&group, p, cmd] {
      if (!group.crashed(p)) {
        group.process(p).abcast(util::Bytes(cmd.begin(), cmd.end()));
      }
    });
  };
  const char* keys[] = {"alpha", "beta", "gamma"};
  int round = 0;
  for (util::TimePoint t = util::milliseconds(1); t < util::milliseconds(300);
       t += util::milliseconds(3), ++round) {
    const util::ProcessId writer = round % n;
    const std::string key = keys[round % 3];
    if (round % 11 == 10) {
      submit(writer, t, "DEL " + key);
    } else {
      submit(writer, t,
             "SET " + key + " v" + std::to_string(round) + "-from-p" +
                 std::to_string(writer));
    }
  }

  if (crash) {
    const util::ProcessId victim = static_cast<util::ProcessId>(n - 1);
    group.crash_at(victim, util::milliseconds(120));
    std::printf("(replica %u will crash at t=120ms)\n\n", victim);
  }

  group.run_until(util::seconds(3));

  std::printf("stack: %s, %zu replicas, %d commands submitted\n\n",
              core::to_string(cfg.stack.kind), n, round);
  bool consistent = true;
  const std::size_t reference = replicas[0].fingerprint();
  for (util::ProcessId p = 0; p < n; ++p) {
    const bool dead = group.crashed(p);
    std::printf("replica %u%s: applied %zu commands, state hash %016zx\n", p,
                dead ? " (crashed)" : "", replicas[p].applied(),
                replicas[p].fingerprint());
    if (!dead && replicas[p].fingerprint() != reference) consistent = false;
  }

  std::printf("\nfinal state (replica 0):\n");
  for (const auto& [k, v] : replicas[0].data()) {
    std::printf("  %s = %s\n", k.c_str(), v.c_str());
  }
  std::printf("\nlive replicas consistent: %s\n",
              consistent ? "YES" : "NO (bug!)");
  return consistent ? 0 : 1;
}
