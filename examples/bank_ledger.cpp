// Replicated bank ledger: the paper's modularity trade-off, end to end.
//
// Every branch (process) holds a full replica of all accounts and submits
// transfers through atomic broadcast; total order makes "apply if the
// balance suffices" deterministic, so no replica ever disagrees about which
// transfers succeeded. The same workload runs on the modular and the
// monolithic stack, and the example reports each stack's completion time
// and wire usage — the paper's headline trade-off, observable from a user
// application.
//
//   $ ./bank_ledger [--n=3] [--accounts=8] [--transfers=300]
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/sim_group.hpp"
#include "util/bytes.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"

using namespace modcast;

namespace {

constexpr std::int64_t kInitialBalance = 1000;

struct Transfer {
  std::uint32_t from;
  std::uint32_t to;
  std::int64_t amount;

  util::Bytes encode() const {
    util::ByteWriter w(16);
    w.u32(from);
    w.u32(to);
    w.i64(amount);
    return w.take();
  }
  static Transfer decode(const util::Bytes& b) {
    util::ByteReader r(b);
    Transfer t;
    t.from = r.u32();
    t.to = r.u32();
    t.amount = r.i64();
    return t;
  }
};

/// One branch's ledger replica.
struct Ledger {
  explicit Ledger(std::size_t accounts)
      : balances(accounts, kInitialBalance) {}

  void apply(const Transfer& t) {
    // Deterministic admission rule: reject overdrafts. Because every
    // replica sees the same order, every replica makes the same decision.
    if (balances[t.from] >= t.amount) {
      balances[t.from] -= t.amount;
      balances[t.to] += t.amount;
      ++applied;
    } else {
      ++rejected;
    }
  }

  std::int64_t total() const {
    std::int64_t sum = 0;
    for (auto b : balances) sum += b;
    return sum;
  }

  std::vector<std::int64_t> balances;
  int applied = 0;
  int rejected = 0;
};

struct RunOutcome {
  std::vector<Ledger> ledgers;
  util::TimePoint all_applied_at = 0;
  std::uint64_t wire_messages = 0;
  std::uint64_t wire_bytes = 0;
};

RunOutcome run(core::StackKind kind, std::size_t n, std::size_t accounts,
               int transfers) {
  core::SimGroupConfig cfg;
  cfg.n = n;
  cfg.stack.kind = kind;
  cfg.record_deliveries = false;
  core::SimGroup group(cfg);

  RunOutcome out;
  out.ledgers.assign(n, Ledger(accounts));
  int total_applied_events = 0;
  for (util::ProcessId p = 0; p < n; ++p) {
    group.process(p).set_deliver_handler(
        [&out, &group, &total_applied_events, p, n, transfers](
            util::ProcessId, std::uint64_t, const util::Bytes& payload) {
          out.ledgers[p].apply(Transfer::decode(payload));
          if (++total_applied_events == transfers * static_cast<int>(n)) {
            out.all_applied_at = group.world().now();
          }
        });
  }
  group.start();

  util::Rng rng(7);
  for (int i = 0; i < transfers; ++i) {
    Transfer t;
    t.from = static_cast<std::uint32_t>(rng.uniform(accounts));
    do {
      t.to = static_cast<std::uint32_t>(rng.uniform(accounts));
    } while (t.to == t.from);
    t.amount = rng.uniform_range(1, 400);
    const auto submitter = static_cast<util::ProcessId>(rng.uniform(n));
    group.world().simulator().at(
        util::milliseconds(1) + i * util::microseconds(700),
        [&group, submitter, t] {
          group.process(submitter).abcast(t.encode());
        });
  }

  group.run_until(util::seconds(10));
  for (util::ProcessId p = 0; p < n; ++p) {
    out.wire_messages += group.process(p).stack().counters().wire_sends;
  }
  const auto& net = group.world().network().total();
  out.wire_bytes = net.payload_bytes;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv, {"n", "accounts", "transfers"});
  const auto n = static_cast<std::size_t>(flags.get_int("n", 3));
  const auto accounts =
      static_cast<std::size_t>(flags.get_int("accounts", 8));
  const int transfers = static_cast<int>(flags.get_int("transfers", 300));
  const auto expected_total =
      static_cast<std::int64_t>(accounts) * kInitialBalance;

  std::printf("replicated bank: %zu branches, %zu accounts, %d transfers\n\n",
              n, accounts, transfers);

  for (auto kind :
       {core::StackKind::kModular, core::StackKind::kMonolithic}) {
    RunOutcome out = run(kind, n, accounts, transfers);

    bool consistent = true;
    for (std::size_t p = 1; p < n; ++p) {
      if (out.ledgers[p].balances != out.ledgers[0].balances) {
        consistent = false;
      }
    }
    const bool conserved = out.ledgers[0].total() == expected_total;

    std::printf("%s stack:\n", core::to_string(kind));
    std::printf("  applied %d, rejected %d (identical at every branch: %s)\n",
                out.ledgers[0].applied, out.ledgers[0].rejected,
                consistent ? "yes" : "NO — BUG");
    std::printf("  money conserved: %s (total %lld)\n",
                conserved ? "yes" : "NO — BUG",
                static_cast<long long>(out.ledgers[0].total()));
    std::printf("  all transfers settled at t = %.1f ms\n",
                util::to_milliseconds(out.all_applied_at));
    std::printf("  network usage: %llu messages, %.1f KiB\n\n",
                static_cast<unsigned long long>(out.wire_messages),
                static_cast<double>(out.wire_bytes) / 1024.0);
    if (!consistent || !conserved) return 1;
  }

  std::printf("both stacks agree on every balance; the monolithic stack\n");
  std::printf("settles the same workload with fewer messages and bytes —\n");
  std::printf("the cost of modularity, visible from the application.\n");
  return 0;
}
