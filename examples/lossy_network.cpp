// Atomic broadcast over a LOSSY network, with protocol tracing.
//
// The protocols assume quasi-reliable channels (§2.1 of the paper) — the
// paper's testbed got them from TCP. This example turns on 15% message loss
// and inserts the ReliableChannel layer (TCP-lite: sequencing, cumulative
// acks, retransmission) underneath the unchanged stacks, then shows the
// retransmission work the channels did and a peek at the structured
// protocol trace.
//
//   $ ./lossy_network [--kind=monolithic|modular] [--drop=0.15]
#include <cstdio>
#include <string>

#include "core/sim_group.hpp"
#include "framework/trace.hpp"
#include "util/flags.hpp"

using namespace modcast;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv, {"kind", "drop"});
  const std::string kind = flags.get("kind", "monolithic");
  const double drop = flags.get_double("drop", 0.15);

  core::SimGroupConfig cfg;
  cfg.n = 3;
  cfg.stack.kind = (kind == "modular") ? core::StackKind::kModular
                                       : core::StackKind::kMonolithic;
  cfg.drop_probability = drop;
  cfg.reliable_channels = true;
  core::SimGroup group(cfg);

  framework::RingTrace trace(200000);
  group.process(0).stack().set_tracer(trace.sink());
  group.start();

  constexpr int kPerProcess = 15;
  for (util::ProcessId p = 0; p < 3; ++p) {
    for (int i = 0; i < kPerProcess; ++i) {
      group.world().simulator().at(
          util::milliseconds(1 + p) + i * util::milliseconds(10),
          [&group, p] {
            if (!group.crashed(p)) {
              group.process(p).abcast(util::Bytes(256, 0x5c));
            }
          });
    }
  }
  group.run_until(util::seconds(20));

  std::printf("stack: %s, drop probability: %.0f%%\n\n",
              core::to_string(cfg.stack.kind), drop * 100);
  for (util::ProcessId p = 0; p < 3; ++p) {
    std::printf("process %u delivered %zu/%d messages\n", p,
                group.deliveries(p).size(), 3 * kPerProcess);
  }

  std::printf("\nchannel layer work (per process):\n");
  for (util::ProcessId p = 0; p < 3; ++p) {
    const auto& s = group.channel_of(p)->stats();
    std::printf(
        "  p%u: %llu data segments, %llu retransmissions, %llu acks, "
        "%llu duplicates dropped\n",
        p, static_cast<unsigned long long>(s.data_sent),
        static_cast<unsigned long long>(s.retransmissions),
        static_cast<unsigned long long>(s.acks_sent),
        static_cast<unsigned long long>(s.duplicates_dropped));
  }

  std::printf("\nfirst protocol-trace records at p0:\n%s",
              trace.dump(12).c_str());

  auto check = core::check_agreement_among_correct(group);
  std::printf("\ntotal order despite loss: %s\n",
              check.ok ? "OK" : check.detail.c_str());
  return check.ok ? 0 : 1;
}
