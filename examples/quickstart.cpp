// Quickstart: a 3-process atomic broadcast group on the simulator.
//
// Builds both the modular and the monolithic stack, broadcasts a handful of
// messages from different processes, and shows that every process delivers
// them in the same total order.
//
//   $ ./quickstart [--kind=modular|monolithic] [--n=3]
#include <cstdio>
#include <string>

#include "core/sim_group.hpp"
#include "util/flags.hpp"

using namespace modcast;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv, {"kind", "n"});
  const std::string kind = flags.get("kind", "modular");
  const auto n = static_cast<std::size_t>(flags.get_int("n", 3));

  core::SimGroupConfig cfg;
  cfg.n = n;
  cfg.stack.kind = (kind == "monolithic") ? core::StackKind::kMonolithic
                                          : core::StackKind::kModular;
  cfg.record_payloads = true;
  core::SimGroup group(cfg);
  group.start();

  // Every process broadcasts two messages.
  for (util::ProcessId p = 0; p < n; ++p) {
    for (int i = 0; i < 2; ++i) {
      std::string text =
          "hello from p" + std::to_string(p) + " #" + std::to_string(i);
      group.world().simulator().at(
          util::milliseconds(1 + p * 2 + i), [&group, p, text] {
            group.process(p).abcast(util::Bytes(text.begin(), text.end()));
          });
    }
  }

  group.run_until(util::seconds(2));

  std::printf("stack: %s, processes: %zu\n\n",
              core::to_string(cfg.stack.kind), n);
  for (util::ProcessId p = 0; p < n; ++p) {
    std::printf("process %u delivered %zu messages:\n", p,
                group.deliveries(p).size());
    const auto& log = group.deliveries(p);
    const auto& payloads = group.payloads(p);
    for (std::size_t i = 0; i < log.size(); ++i) {
      std::printf("  %2zu. (p%u,#%llu) \"%.*s\"  t=%.3f ms\n", i + 1,
                  log[i].origin,
                  static_cast<unsigned long long>(log[i].seq),
                  static_cast<int>(payloads[i].size()),
                  reinterpret_cast<const char*>(payloads[i].data()),
                  util::to_milliseconds(log[i].at));
    }
  }

  auto check = core::check_agreement_among_correct(group);
  std::printf("\ntotal order + agreement: %s\n",
              check.ok ? "OK" : check.detail.c_str());
  return check.ok ? 0 : 1;
}
