// Totally-ordered chat room on REAL threads (runtime/thread_world).
//
// The other examples run on the deterministic simulator; this one runs the
// identical protocol stacks on OS threads with wall-clock timers, proving
// the library is runtime-agnostic. Three members post concurrently from
// their own threads; atomic broadcast gives every member the exact same
// transcript.
//
//   $ ./thread_chat [--kind=monolithic|modular]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/abcast_process.hpp"
#include "runtime/thread_world.hpp"
#include "util/flags.hpp"

using namespace modcast;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv, {"kind"});
  const std::string kind = flags.get("kind", "monolithic");

  constexpr std::size_t kMembers = 3;
  const char* names[kMembers] = {"ada", "bob", "eve"};

  runtime::ThreadWorld world(kMembers);
  std::vector<std::unique_ptr<core::AbcastProcess>> procs;
  std::mutex mu;
  std::vector<std::vector<std::string>> transcripts(kMembers);

  for (util::ProcessId p = 0; p < kMembers; ++p) {
    core::StackOptions opts;
    opts.kind = (kind == "modular") ? core::StackKind::kModular
                                    : core::StackKind::kMonolithic;
    opts.fd.heartbeat_interval = util::milliseconds(20);
    opts.fd.timeout = util::milliseconds(200);
    opts.liveness_timeout = util::milliseconds(100);
    procs.push_back(
        std::make_unique<core::AbcastProcess>(world.runtime(p), opts));
    procs[p]->set_deliver_handler([&, p](util::ProcessId origin,
                                         std::uint64_t,
                                         const util::Bytes& payload) {
      std::lock_guard lock(mu);
      transcripts[p].emplace_back(
          std::string(names[origin]) + ": " +
          std::string(payload.begin(), payload.end()));
    });
    world.attach(p, &procs[p]->protocol());
  }
  world.start();

  const char* lines[] = {"hi all",       "anyone here?", "yes!",
                         "who ordered?", "consensus did", "nice"};
  // Each member posts from its own application thread, concurrently.
  std::vector<std::thread> posters;
  for (util::ProcessId p = 0; p < kMembers; ++p) {
    posters.emplace_back([&, p] {
      for (int i = 0; i < 2; ++i) {
        const char* text = lines[(p * 2 + i) % 6];
        procs[p]->abcast(util::Bytes(text, text + std::strlen(text)));
        std::this_thread::sleep_for(std::chrono::milliseconds(3));
      }
    });
  }
  for (auto& t : posters) t.join();

  // Wait for everyone to see all 6 messages.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  for (;;) {
    {
      std::lock_guard lock(mu);
      bool done = true;
      for (auto& t : transcripts) done &= (t.size() == 6);
      if (done) break;
    }
    if (std::chrono::steady_clock::now() > deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  world.stop();

  std::printf("chat over the %s stack, real threads:\n\n", kind.c_str());
  bool identical = true;
  {
    std::lock_guard lock(mu);
    for (std::size_t i = 0; i < transcripts[0].size(); ++i) {
      std::printf("  %zu. %s\n", i + 1, transcripts[0][i].c_str());
    }
    for (util::ProcessId p = 1; p < kMembers; ++p) {
      identical &= (transcripts[p] == transcripts[0]);
    }
  }
  std::printf("\nall %zu members saw the identical transcript: %s\n",
              kMembers, identical ? "YES" : "NO (bug!)");
  return identical ? 0 : 1;
}
